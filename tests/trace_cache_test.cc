/**
 * @file
 * Trace-cache determinism tests: the plane cache must be invisible to
 * every simulation result. NetworkStats (and their JSON serialization)
 * must be byte-identical with the cache on or off and across thread
 * counts, the Rng must be left in the identical post-generation state
 * on a hit as on a miss, and the hit/miss statistics must add up.
 * Audits are forced on (audit_env.cc), so the cached-plane runs also
 * satisfy every invariant audit.
 */

#include <gtest/gtest.h>

#include "ant/ant_pe.hh"
#include "report/report.hh"
#include "scnn/scnn_pe.hh"
#include "workload/runner.hh"
#include "workload/trace_cache.hh"
#include "workload/tracegen.hh"

namespace antsim {
namespace {

/** Restore the process-wide cache toggle on scope exit. */
class CacheToggleGuard
{
  public:
    CacheToggleGuard() : saved_(trace_cache::enabled()) {}
    ~CacheToggleGuard() { trace_cache::setEnabled(saved_); }

  private:
    bool saved_;
};

std::vector<ConvLayer>
testNetwork()
{
    return {{"c0", 3, 4, 12, 12, 3, 1, 1}, {"c1", 4, 4, 12, 12, 3, 2, 1}};
}

/** Full byte-level serialization of the stats (the golden artifact). */
std::string
statsBytes(const NetworkStats &stats)
{
    return networkStatsToJson(stats, 64).dump();
}

NetworkStats
runNet(PeModel &pe, std::uint32_t threads)
{
    RunConfig config;
    config.sampleCap = 2;
    config.numThreads = threads;
    return runConvNetwork(pe, testNetwork(), SparsityProfile::swat(0.9),
                          config);
}

TEST(TraceCache, NetworkStatsIdenticalCacheOnAndOff)
{
    const CacheToggleGuard guard;
    ScnnPe scnn;
    AntPe ant;
    for (PeModel *pe : {static_cast<PeModel *>(&scnn),
                        static_cast<PeModel *>(&ant)}) {
        trace_cache::setEnabled(false);
        trace_cache::reset();
        const std::string cold = statsBytes(runNet(*pe, 1));

        trace_cache::setEnabled(true);
        trace_cache::reset();
        const std::string warm_first = statsBytes(runNet(*pe, 1));
        // Second run hits the now-populated cache for every plane.
        const std::string warm_second = statsBytes(runNet(*pe, 1));

        EXPECT_EQ(cold, warm_first) << pe->name();
        EXPECT_EQ(cold, warm_second) << pe->name();
        EXPECT_GT(trace_cache::hits(), 0u) << pe->name();
    }
}

TEST(TraceCache, NetworkStatsIdenticalAcrossThreadCounts)
{
    const CacheToggleGuard guard;
    trace_cache::setEnabled(true);
    trace_cache::reset();
    ScnnPe pe;
    const std::string serial = statsBytes(runNet(pe, 1));
    const std::string parallel = statsBytes(runNet(pe, 4));
    EXPECT_EQ(serial, parallel);
}

TEST(TraceCache, HitAndMissStatisticsAddUp)
{
    const CacheToggleGuard guard;
    trace_cache::setEnabled(true);
    trace_cache::reset();

    const ConvLayer layer{"c", 3, 4, 10, 10, 3, 1, 1};
    Rng rng_a(mixSeed(7, 0, 0, 0));
    const StackTask first = makeConvPhaseTask(
        layer, TrainingPhase::Forward, SparsityProfile::swat(0.8), rng_a);
    const std::uint64_t cold_misses = trace_cache::misses();
    EXPECT_EQ(trace_cache::hits(), 0u);
    // image + one kernel per output channel, every one distinct.
    EXPECT_EQ(cold_misses, 1u + layer.outChannels);
    EXPECT_EQ(trace_cache::planesGenerated(), cold_misses);

    // Identical seed stream: every plane lookup now hits.
    Rng rng_b(mixSeed(7, 0, 0, 0));
    const StackTask second = makeConvPhaseTask(
        layer, TrainingPhase::Forward, SparsityProfile::swat(0.8), rng_b);
    EXPECT_EQ(trace_cache::misses(), cold_misses);
    EXPECT_EQ(trace_cache::hits(), cold_misses);
    EXPECT_EQ(trace_cache::planesGenerated(), cold_misses);

    // The hit must alias the cached plane, not copy it.
    EXPECT_EQ(first.image.get(), second.image.get());
    ASSERT_EQ(first.kernels.size(), second.kernels.size());
    for (std::size_t i = 0; i < first.kernels.size(); ++i)
        EXPECT_EQ(first.kernels[i].get(), second.kernels[i].get());
    // And the downstream random streams stay aligned.
    EXPECT_EQ(rng_a.state(), rng_b.state());
}

TEST(TraceCache, HitRestoresExactPostGenerationRngState)
{
    const CacheToggleGuard guard;
    const PlaneRecipe recipe =
        PlaneRecipe::plain(7, 9, 0.6, SparsifyMethod::Bernoulli);

    // Reference: a plain generation with the cache disabled.
    trace_cache::setEnabled(false);
    Rng reference(1234);
    const auto cold = cachedCsrPlane(recipe, reference);

    // Miss then hit with the cache enabled, same starting state.
    trace_cache::setEnabled(true);
    trace_cache::reset();
    Rng miss_rng(1234);
    const auto missed = cachedCsrPlane(recipe, miss_rng);
    Rng hit_rng(1234);
    const auto hit = cachedCsrPlane(recipe, hit_rng);

    EXPECT_EQ(trace_cache::misses(), 1u);
    EXPECT_EQ(trace_cache::hits(), 1u);
    EXPECT_TRUE(*cold == *missed);
    EXPECT_TRUE(*cold == *hit);
    EXPECT_EQ(reference.state(), miss_rng.state());
    EXPECT_EQ(reference.state(), hit_rng.state());
    EXPECT_EQ(missed.get(), hit.get());
}

TEST(TraceCache, DisabledCacheNeverAliases)
{
    const CacheToggleGuard guard;
    trace_cache::setEnabled(false);
    trace_cache::reset();
    const PlaneRecipe recipe =
        PlaneRecipe::plain(5, 5, 0.5, SparsifyMethod::TopK);
    Rng rng_a(42);
    Rng rng_b(42);
    const auto a = cachedCsrPlane(recipe, rng_a);
    const auto b = cachedCsrPlane(recipe, rng_b);
    EXPECT_EQ(trace_cache::hits(), 0u);
    EXPECT_EQ(trace_cache::misses(), 2u);
    EXPECT_NE(a.get(), b.get());
    EXPECT_TRUE(*a == *b);
}

} // namespace
} // namespace antsim
