/**
 * @file
 * Tests for the two-phase clocked simulation framework.
 */

#include <gtest/gtest.h>

#include "sim/clock.hh"

namespace antsim {
namespace {

/** Counts its own evaluate/commit invocations. */
class ProbeModule : public Module
{
  public:
    void evaluate() override { ++evals; }
    void commit() override { ++commits; }

    int evals = 0;
    int commits = 0;
};

/** A one-stage pipeline that increments values passing through. */
class IncrementStage : public Module
{
  public:
    explicit IncrementStage(PipeReg<int> &in, PipeReg<int> &out)
        : in_(in), out_(out)
    {}

    void
    evaluate() override
    {
        if (in_.valid())
            out_.setNext(in_.value() + 1);
        else
            out_.clearNext();
    }

    void commit() override { out_.latch(); }

  private:
    PipeReg<int> &in_;
    PipeReg<int> &out_;
};

TEST(Clock, TickRunsEvaluateThenCommit)
{
    Simulator sim;
    ProbeModule probe;
    sim.add(&probe);
    sim.tick();
    EXPECT_EQ(probe.evals, 1);
    EXPECT_EQ(probe.commits, 1);
    EXPECT_EQ(sim.cycle(), 1u);
}

TEST(Clock, RunAdvancesMultipleCycles)
{
    Simulator sim;
    ProbeModule probe;
    sim.add(&probe);
    sim.run(10);
    EXPECT_EQ(probe.evals, 10);
    EXPECT_EQ(sim.cycle(), 10u);
}

TEST(PipeReg, StartsInvalid)
{
    PipeReg<int> reg;
    EXPECT_FALSE(reg.valid());
}

TEST(PipeReg, LatchMakesValueVisible)
{
    PipeReg<int> reg;
    reg.setNext(42);
    EXPECT_FALSE(reg.valid()); // not yet latched
    reg.latch();
    EXPECT_TRUE(reg.valid());
    EXPECT_EQ(reg.value(), 42);
}

TEST(PipeReg, ClearNextInsertsBubble)
{
    PipeReg<int> reg;
    reg.setNext(1);
    reg.latch();
    reg.clearNext();
    reg.latch();
    EXPECT_FALSE(reg.valid());
}

TEST(PipeReg, LatchWithoutSetNextIsBubble)
{
    PipeReg<int> reg;
    reg.setNext(9);
    reg.latch();
    reg.latch(); // no setNext before this edge
    EXPECT_FALSE(reg.valid());
}

TEST(Clock, PipelineTransportsWithOneCycleLatencyPerStage)
{
    // Two stages: value injected into reg0 appears at reg2 after two
    // ticks, incremented twice.
    PipeReg<int> reg0;
    PipeReg<int> reg1;
    PipeReg<int> reg2;
    IncrementStage s1(reg0, reg1);
    IncrementStage s2(reg1, reg2);
    Simulator sim;
    sim.add(&s1);
    sim.add(&s2);

    reg0.setNext(10);
    reg0.latch();
    sim.tick();
    EXPECT_TRUE(reg1.valid());
    EXPECT_EQ(reg1.value(), 11);
    EXPECT_FALSE(reg2.valid());
    // Insert a bubble behind the value.
    reg0.latch();
    sim.tick();
    EXPECT_FALSE(reg1.valid());
    EXPECT_TRUE(reg2.valid());
    EXPECT_EQ(reg2.value(), 12);
}

TEST(Clock, TwoPhaseSemanticsPreventSameCycleLeak)
{
    // Even though stage 1 is evaluated before stage 2 in registration
    // order, a value written by stage 1 must not reach stage 2 in the
    // same cycle.
    PipeReg<int> reg0;
    PipeReg<int> reg1;
    PipeReg<int> reg2;
    IncrementStage s1(reg0, reg1);
    IncrementStage s2(reg1, reg2);
    Simulator sim;
    sim.add(&s1);
    sim.add(&s2);
    reg0.setNext(5);
    reg0.latch();
    sim.tick();
    EXPECT_FALSE(reg2.valid());
}

} // namespace
} // namespace antsim
