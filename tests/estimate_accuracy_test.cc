/**
 * @file
 * Bounded-error gate for the analytical estimation fast path
 * (src/estimate): runs the estimator and the cycle-level engine side
 * by side on fig09- and table2-derived suites and asserts the relative
 * error stays inside the documented trust region (<= 10% on cycles and
 * energy, <= 5% on RCPs avoided). The conservation laws are exact by
 * construction -- estimateConvNetwork / estimateMatmulNetwork audit
 * their own results with zero slack, and audit_env.cc forces the
 * audits on here.
 *
 * When ANTSIM_ACCURACY_TABLE is set, the collected per-suite error
 * rows are also written there as a markdown table (consumed by the CI
 * estimate-accuracy job and by the README's "when to trust the
 * estimate" section).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "ant/ant_pe.hh"
#include "baselines/inner_product.hh"
#include "estimate/estimate.hh"
#include "scnn/scnn_pe.hh"
#include "sim/energy.hh"
#include "workload/networks.hh"
#include "workload/runner.hh"

namespace antsim {
namespace {

constexpr double kCycleBound = 0.10;
constexpr double kEnergyBound = 0.10;
constexpr double kRcpBound = 0.05;

struct ErrorRow
{
    std::string suite;
    std::string pe;
    double cycles;
    double energy;
    double rcps; // negative when the PE avoids no RCPs
};

std::vector<ErrorRow> &
errorRows()
{
    static std::vector<ErrorRow> rows;
    return rows;
}

double
relErr(double est, double ref)
{
    if (ref == 0.0)
        return est == 0.0 ? 0.0 : 1.0;
    return std::abs(est - ref) / std::abs(ref);
}

RunConfig
suiteConfig()
{
    RunConfig cfg;
    // Small planes need many sampled tasks before the cycle-level
    // reference approaches its own expectation: at sampleCap 8 two
    // statistically identical phases of a 4x4-plane layer can differ
    // by 40% between themselves, which would gate the estimator on
    // reference sampling noise rather than model error.
    cfg.sampleCap = 64;
    cfg.seed = 42;
    return cfg;
}

/**
 * Layers with the Table 2 row shapes (kernel, padded image, stride),
 * at small channel counts so the cycle-level reference stays fast.
 */
std::vector<ConvLayer>
table2Layers()
{
    return {
        {"t2_3x114", 4, 8, 112, 112, 3, 1, 1},
        {"t2_7x230", 4, 8, 224, 224, 7, 2, 3},
        {"t2_1x56", 4, 8, 56, 56, 1, 1, 0},
        {"t2_3x16", 4, 8, 14, 14, 3, 1, 1},
    };
}

/** A representative slice of the fig09 conv suite (ResNet18/CIFAR). */
std::vector<ConvLayer>
fig09Layers()
{
    std::vector<ConvLayer> all = resnet18Cifar();
    // Stem + one layer from each stage: covers the stride-2 and 1x1
    // downsample geometries without simulating the full network.
    return {all.at(0), all.at(1), all.at(6), all.at(11), all.at(16)};
}

void
compareConv(const std::string &suite, PeModel &pe,
            const std::vector<ConvLayer> &layers,
            const SparsityProfile &profile)
{
    SCOPED_TRACE(suite + " / " + pe.name());
    const auto desc = estimate::describePe(pe);
    ASSERT_TRUE(desc.has_value());
    const RunConfig cfg = suiteConfig();
    const NetworkStats sim = runConvNetwork(pe, layers, profile, cfg);
    const NetworkStats est =
        estimate::estimateConvNetwork(*desc, layers, profile, cfg);

    const EnergyModel energy;
    ErrorRow row;
    row.suite = suite;
    row.pe = pe.name();
    row.cycles = relErr(
        static_cast<double>(est.total.get(Counter::Cycles)),
        static_cast<double>(sim.total.get(Counter::Cycles)));
    row.energy = relErr(est.energyPj(energy), sim.energyPj(energy));
    const auto sim_rcps =
        static_cast<double>(sim.total.get(Counter::RcpsAvoided));
    row.rcps = sim_rcps > 0.0
        ? relErr(static_cast<double>(est.total.get(Counter::RcpsAvoided)),
                 sim_rcps)
        : -1.0;
    errorRows().push_back(row);

    EXPECT_LE(row.cycles, kCycleBound);
    EXPECT_LE(row.energy, kEnergyBound);
    if (row.rcps >= 0.0) {
        EXPECT_LE(row.rcps, kRcpBound);
    }
    // Estimation covers every plane pair: no sampling.
    for (const LayerStats &ls : est.layers)
        for (const PhaseStats &ps : ls.phases)
            EXPECT_EQ(ps.pairsSimulated, ps.pairsTotal);
}

void
compareMatmul(const std::string &suite, PeModel &pe,
              const std::vector<MatmulLayer> &layers, double sparsity)
{
    SCOPED_TRACE(suite + " / " + pe.name());
    const auto desc = estimate::describePe(pe);
    ASSERT_TRUE(desc.has_value());
    const RunConfig cfg = suiteConfig();
    const NetworkStats sim = runMatmulNetwork(
        pe, layers, sparsity, SparsifyMethod::TopK, cfg);
    const NetworkStats est = estimate::estimateMatmulNetwork(
        *desc, layers, sparsity, SparsifyMethod::TopK, cfg);

    const EnergyModel energy;
    ErrorRow row;
    row.suite = suite;
    row.pe = pe.name();
    row.cycles = relErr(
        static_cast<double>(est.total.get(Counter::Cycles)),
        static_cast<double>(sim.total.get(Counter::Cycles)));
    row.energy = relErr(est.energyPj(energy), sim.energyPj(energy));
    const auto sim_rcps =
        static_cast<double>(sim.total.get(Counter::RcpsAvoided));
    row.rcps = sim_rcps > 0.0
        ? relErr(static_cast<double>(est.total.get(Counter::RcpsAvoided)),
                 sim_rcps)
        : -1.0;
    errorRows().push_back(row);

    EXPECT_LE(row.cycles, kCycleBound);
    EXPECT_LE(row.energy, kEnergyBound);
    if (row.rcps >= 0.0) {
        EXPECT_LE(row.rcps, kRcpBound);
    }
}

TEST(EstimateAccuracy, Fig09SwatAnt)
{
    AntPe pe;
    compareConv("fig09 swat-90", pe, fig09Layers(),
                SparsityProfile::swat(0.9));
}

TEST(EstimateAccuracy, Fig09SwatScnn)
{
    ScnnPe pe;
    compareConv("fig09 swat-90", pe, fig09Layers(),
                SparsityProfile::swat(0.9));
}

TEST(EstimateAccuracy, Fig09SwatDense)
{
    DenseInnerProductPe pe;
    compareConv("fig09 swat-90", pe, fig09Layers(),
                SparsityProfile::swat(0.9));
}

TEST(EstimateAccuracy, Fig09SwatTensorDash)
{
    TensorDashPe pe;
    compareConv("fig09 swat-90", pe, fig09Layers(),
                SparsityProfile::swat(0.9));
}

TEST(EstimateAccuracy, Fig09TopKAnt)
{
    AntPe pe;
    compareConv("fig09 topk-90", pe, fig09Layers(),
                SparsityProfile::topK(0.9));
}

TEST(EstimateAccuracy, Fig09ModerateSparsityAnt)
{
    AntPe pe;
    compareConv("fig09 swat-50", pe, fig09Layers(),
                SparsityProfile::swat(0.5));
}

TEST(EstimateAccuracy, Fig09KernelStationaryAnt)
{
    AntPeConfig cfg;
    cfg.dataflow = AntDataflow::KernelStationary;
    AntPe pe(cfg);
    compareConv("fig09 swat-90 ks", pe, fig09Layers(),
                SparsityProfile::swat(0.9));
}

TEST(EstimateAccuracy, Table2SwatAnt)
{
    AntPe pe;
    compareConv("table2 swat-90", pe, table2Layers(),
                SparsityProfile::swat(0.9));
}

TEST(EstimateAccuracy, Table2SwatScnn)
{
    ScnnPe pe;
    compareConv("table2 swat-90", pe, table2Layers(),
                SparsityProfile::swat(0.9));
}

TEST(EstimateAccuracy, MatmulRnnAnt)
{
    AntPe pe;
    compareMatmul("rnn topk-90", pe, rnnLayers(), 0.9);
}

TEST(EstimateAccuracy, MatmulRnnScnn)
{
    ScnnPe pe;
    compareMatmul("rnn topk-90", pe, rnnLayers(), 0.9);
}

TEST(EstimateAccuracy, MatmulRnnDense)
{
    DenseInnerProductPe pe;
    compareMatmul("rnn topk-90", pe, rnnLayers(), 0.9);
}

// Declared last so every comparison above has already pushed its row:
// gtest runs same-file tests in declaration order.
TEST(EstimateAccuracy, WritesAccuracyTable)
{
    const char *path = std::getenv("ANTSIM_ACCURACY_TABLE");
    if (path == nullptr || path[0] == '\0')
        GTEST_SKIP() << "ANTSIM_ACCURACY_TABLE not set";
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << "| suite | PE | cycles err | energy err | RCPs-avoided err |\n";
    out << "|---|---|---|---|---|\n";
    for (const ErrorRow &row : errorRows()) {
        out << "| " << row.suite << " | " << row.pe << " | ";
        auto pct = [&](double v) {
            out << static_cast<int>(std::ceil(v * 1000.0)) / 10.0 << "%";
        };
        pct(row.cycles);
        out << " | ";
        pct(row.energy);
        out << " | ";
        if (row.rcps >= 0.0)
            pct(row.rcps);
        else
            out << "n/a";
        out << " |\n";
    }
}

} // namespace
} // namespace antsim
