/**
 * @file
 * Tests for the Bfloat16 storage type.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/bfloat16.hh"

namespace antsim {
namespace {

TEST(Bfloat16, DefaultIsZero)
{
    Bfloat16 b;
    EXPECT_EQ(b.bits(), 0u);
    EXPECT_EQ(b.toFloat(), 0.0f);
}

TEST(Bfloat16, ExactValuesRoundTrip)
{
    // Values with <= 8 significand bits are exact in bf16.
    for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, -3.5f, 256.0f, 0.125f}) {
        EXPECT_EQ(Bfloat16(v).toFloat(), v) << v;
    }
}

TEST(Bfloat16, RoundToNearestEven)
{
    // bf16 has a 7-bit stored mantissa, so the ULP at 1.0 is 2^-7 and
    // 1 + 2^-8 is exactly halfway to the next representable value;
    // ties go to even (1.0).
    const float halfway = 1.0f + std::ldexp(1.0f, -8);
    EXPECT_EQ(Bfloat16(halfway).toFloat(), 1.0f);
    // Slightly above the halfway point rounds up.
    const float above = 1.0f + std::ldexp(1.0f, -8) + std::ldexp(1.0f, -15);
    EXPECT_EQ(Bfloat16(above).toFloat(), 1.0f + std::ldexp(1.0f, -7));
}

TEST(Bfloat16, RelativeErrorBounded)
{
    // Round-to-nearest gives relative error <= 2^-9 for normal values.
    for (float v : {3.14159f, 1234.567f, -0.0078125f, 9.9e20f}) {
        const float r = bf16Round(v);
        EXPECT_LE(std::fabs(r - v), std::fabs(v) * std::ldexp(1.0f, -8))
            << v;
    }
}

TEST(Bfloat16, InfinityPreserved)
{
    const float inf = std::numeric_limits<float>::infinity();
    EXPECT_EQ(Bfloat16(inf).toFloat(), inf);
    EXPECT_EQ(Bfloat16(-inf).toFloat(), -inf);
}

TEST(Bfloat16, NanStaysNan)
{
    const float nan = std::numeric_limits<float>::quiet_NaN();
    EXPECT_TRUE(std::isnan(Bfloat16(nan).toFloat()));
}

TEST(Bfloat16, LargeValueDoesNotWrapToInfinityUnlessOverflow)
{
    // Max bf16-representable is about 3.39e38.
    EXPECT_TRUE(std::isfinite(Bfloat16(3.0e38f).toFloat()));
}

TEST(Bfloat16, BitsRoundTrip)
{
    const Bfloat16 b = Bfloat16::fromBits(0x3f80); // 1.0
    EXPECT_EQ(b.toFloat(), 1.0f);
    EXPECT_EQ(Bfloat16(1.0f).bits(), 0x3f80);
}

TEST(Bfloat16, EqualityIsBitwise)
{
    EXPECT_EQ(Bfloat16(2.0f), Bfloat16(2.0f));
    EXPECT_NE(Bfloat16(2.0f), Bfloat16(3.0f));
}

TEST(Bfloat16, ImplicitWideningInArithmetic)
{
    const Bfloat16 a(1.5f);
    const Bfloat16 b(2.0f);
    EXPECT_EQ(a * b, 3.0f);
}

} // namespace
} // namespace antsim
