/**
 * @file
 * Tests for the experiment runner (sampling, aggregation, ratios).
 */

#include <gtest/gtest.h>

#include "ant/ant_pe.hh"
#include "scnn/scnn_pe.hh"
#include "workload/runner.hh"

namespace antsim {
namespace {

// Large enough that the update phase dominates -- miniature layers sit
// in the paper's own small-layer-slowdown regime (Sec. 7.6).
std::vector<ConvLayer>
tinyNetwork()
{
    return {
        {"l0", 2, 16, 24, 24, 3, 1, 1},
        {"l1", 16, 16, 24, 24, 3, 2, 1},
        {"l2", 16, 8, 12, 12, 1, 1, 0},
    };
}

RunConfig
tinyConfig()
{
    RunConfig cfg;
    cfg.sampleCap = 4;
    cfg.seed = 7;
    return cfg;
}

TEST(Runner, ProducesPerLayerPerPhaseStats)
{
    ScnnPe pe;
    const auto stats = runConvNetwork(pe, tinyNetwork(),
                                      SparsityProfile::swat(0.9),
                                      tinyConfig());
    ASSERT_EQ(stats.layers.size(), 3u);
    for (const auto &layer : stats.layers) {
        for (const auto &phase : layer.phases) {
            EXPECT_GT(phase.pairsTotal, 0u);
            EXPECT_LE(phase.pairsSimulated, phase.pairsTotal);
            EXPECT_GT(phase.counters.get(Counter::Cycles), 0u);
        }
    }
    EXPECT_GT(stats.total.get(Counter::Cycles), 0u);
    EXPECT_GT(stats.total.get(Counter::MultsExecuted), 0u);
}

TEST(Runner, SamplingScalesCounters)
{
    // With sampleCap >= pairsTotal everything is simulated; the totals
    // of a capped run should approximate the full run.
    ScnnPe pe;
    RunConfig full = tinyConfig();
    full.sampleCap = 1000;
    RunConfig capped = tinyConfig();
    capped.sampleCap = 4;
    const std::vector<ConvLayer> net = {{"l0", 4, 4, 12, 12, 3, 1, 1}};
    const auto full_stats =
        runConvNetwork(pe, net, SparsityProfile::swat(0.9), full);
    const auto capped_stats =
        runConvNetwork(pe, net, SparsityProfile::swat(0.9), capped);
    const double full_mults = static_cast<double>(
        full_stats.total.get(Counter::MultsExecuted));
    const double capped_mults = static_cast<double>(
        capped_stats.total.get(Counter::MultsExecuted));
    EXPECT_NEAR(capped_mults / full_mults, 1.0, 0.35);
}

TEST(Runner, DeterministicAcrossRuns)
{
    ScnnPe pe;
    const auto a = runConvNetwork(pe, tinyNetwork(),
                                  SparsityProfile::swat(0.9), tinyConfig());
    const auto b = runConvNetwork(pe, tinyNetwork(),
                                  SparsityProfile::swat(0.9), tinyConfig());
    EXPECT_EQ(a.total.get(Counter::Cycles), b.total.get(Counter::Cycles));
    EXPECT_EQ(a.total.get(Counter::MultsExecuted),
              b.total.get(Counter::MultsExecuted));
}

TEST(Runner, AntBeatsScnnAtHighSparsity)
{
    ScnnPe scnn;
    AntPe ant;
    const auto cfg = tinyConfig();
    const auto profile = SparsityProfile::swat(0.9);
    const auto scnn_stats = runConvNetwork(scnn, tinyNetwork(), profile,
                                           cfg);
    const auto ant_stats = runConvNetwork(ant, tinyNetwork(), profile,
                                          cfg);
    EXPECT_GT(speedupOf(scnn_stats, ant_stats), 1.0);
    EXPECT_GT(energyRatioOf(scnn_stats, ant_stats), 1.0);
    EXPECT_GT(ant_stats.rcpAvoidedFraction(), 0.5);
    EXPECT_EQ(scnn_stats.total.get(Counter::RcpsAvoided), 0u);
}

TEST(Runner, PhaseMaskSkipsPhases)
{
    ScnnPe pe;
    RunConfig cfg = tinyConfig();
    cfg.phases = {true, false, false};
    const auto stats = runConvNetwork(pe, tinyNetwork(),
                                      SparsityProfile::swat(0.9), cfg);
    for (const auto &layer : stats.layers) {
        EXPECT_GT(layer.phases[0].pairsTotal, 0u);
        EXPECT_EQ(layer.phases[1].pairsTotal, 0u);
        EXPECT_EQ(layer.phases[2].pairsTotal, 0u);
    }
}

TEST(Runner, AcceleratorCyclesArePerfectBalance)
{
    ScnnPe pe;
    const auto stats = runConvNetwork(pe, tinyNetwork(),
                                      SparsityProfile::swat(0.9),
                                      tinyConfig());
    const std::uint64_t pe_cycles = stats.total.get(Counter::Cycles);
    EXPECT_EQ(stats.acceleratorCycles(64), (pe_cycles + 63) / 64);
}

TEST(Runner, MatmulWorkload)
{
    AntPe ant;
    const std::vector<MatmulLayer> layers = {{"mm", 64, 16, 16, 32}};
    RunConfig cfg = tinyConfig();
    const auto stats = runMatmulNetwork(ant, layers, 0.9,
                                        SparsifyMethod::Bernoulli, cfg);
    ASSERT_EQ(stats.layers.size(), 1u);
    EXPECT_GT(stats.total.get(Counter::MultsExecuted), 0u);
    EXPECT_GT(stats.rcpAvoidedFraction(), 0.8);
}

TEST(Runner, ValidMultFractionBounds)
{
    ScnnPe pe;
    const auto stats = runConvNetwork(pe, tinyNetwork(),
                                      SparsityProfile::swat(0.9),
                                      tinyConfig());
    EXPECT_GE(stats.validMultFraction(), 0.0);
    EXPECT_LE(stats.validMultFraction(), 1.0);
}

TEST(Runner, UpdatePhaseDominatedByRcpsOnScnn)
{
    // The Fig. 1 observation at network scale: in the update phase the
    // valid fraction of executed products collapses.
    ScnnPe pe;
    RunConfig cfg = tinyConfig();
    cfg.phases = {false, false, true};
    const auto stats = runConvNetwork(pe, tinyNetwork(),
                                      SparsityProfile::swat(0.9), cfg);
    EXPECT_LT(stats.validMultFraction(), 0.35);
}

} // namespace
} // namespace antsim
