/**
 * @file
 * The tracing layer's central guarantee: the exported Chrome trace
 * JSON is *byte-identical* at every thread count (src/obs/trace.hh
 * "Determinism"). Buffers are filled on whichever worker runs a unit,
 * but they land in preallocated task-index slots and the exporter
 * walks them in index order, so worker scheduling cannot leak into the
 * document. Also pins the UnitRecorder span algebra (coalescing, task
 * spans, budget truncation) and the merged-histogram determinism.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ant/ant_pe.hh"
#include "obs/trace.hh"
#include "scnn/scnn_pe.hh"
#include "workload/runner.hh"

namespace antsim {
namespace {

using obs::HistId;
using obs::InstantKind;
using obs::SpanKind;
using obs::UnitRecorder;

/** Restore the global tracing state however a test exits. */
class TracingScope
{
  public:
    TracingScope()
    {
        obs::setEnabled(true);
        obs::globalSink().clear();
    }

    ~TracingScope()
    {
        obs::globalSink().clear();
        obs::setEnabled(false);
    }
};

/** First layers of ResNet18: enough units to exercise every worker. */
std::vector<ConvLayer>
resnet18Slice()
{
    std::vector<ConvLayer> layers = resnet18Cifar();
    layers.resize(4);
    return layers;
}

/** Run both evaluated PE models and export the combined trace. */
std::string
tracedRun(std::uint32_t threads)
{
    TracingScope tracing;
    RunConfig config;
    config.sampleCap = 2;
    config.numThreads = threads;

    ScnnPe scnn;
    config.runLabel = "scnn/resnet18-slice";
    runConvNetwork(scnn, resnet18Slice(), SparsityProfile::swat(0.9),
                   config);
    AntPe ant;
    config.runLabel = "ant/resnet18-slice";
    runConvNetwork(ant, resnet18Slice(), SparsityProfile::swat(0.9),
                   config);
    return obs::globalSink().toChromeJson(config.numPes);
}

TEST(TraceDeterminism, ChromeJsonByteIdenticalAcrossThreadCounts)
{
    const std::string serial = tracedRun(1);
    ASSERT_FALSE(serial.empty());
    for (const std::uint32_t threads : {2u, 4u}) {
        const std::string parallel = tracedRun(threads);
        // EXPECT_EQ on multi-MB strings produces unreadable failure
        // output; compare and report only the verdict + first diff.
        if (parallel == serial)
            continue;
        std::size_t at = 0;
        while (at < serial.size() && at < parallel.size() &&
               serial[at] == parallel[at])
            ++at;
        FAIL() << "trace at " << threads
               << " threads diverges from serial at byte " << at << ": "
               << serial.substr(at > 40 ? at - 40 : 0, 80) << " vs "
               << parallel.substr(at > 40 ? at - 40 : 0, 80);
    }
}

TEST(TraceDeterminism, MergedHistogramsIdenticalAcrossThreadCounts)
{
    TracingScope tracing;
    RunConfig config;
    config.sampleCap = 2;
    config.numThreads = 1;
    ScnnPe pe;
    runConvNetwork(pe, resnet18Slice(), SparsityProfile::swat(0.9),
                   config);
    const obs::HistogramRegistry serial =
        obs::globalSink().mergedHistograms();
    EXPECT_GT(serial.get(HistId::TaskCycles).count(), 0u);

    obs::globalSink().clear();
    config.numThreads = 4;
    runConvNetwork(pe, resnet18Slice(), SparsityProfile::swat(0.9),
                   config);
    EXPECT_TRUE(obs::globalSink().mergedHistograms() == serial);
}

TEST(TraceDeterminism, TraceContainsExpectedEventShapes)
{
    const std::string json = tracedRun(1);
    // Cheap structural pins; scripts/trace_summary.py --check does the
    // full parse in CI.
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"PE 0\""), std::string::npos);
    EXPECT_NE(json.find("\"active\""), std::string::npos);
    EXPECT_NE(json.find("\"chunk_task\""), std::string::npos);
    EXPECT_NE(json.find("scnn/resnet18-slice"), std::string::npos);
    EXPECT_NE(json.find("ant/resnet18-slice"), std::string::npos);
    // Integer timestamps only: a '.' inside a ts field would break
    // byte-determinism guarantees.
    EXPECT_EQ(json.find("\"ts\":-"), std::string::npos);
}

TEST(UnitRecorder, AdjacentSameKindSpansCoalesce)
{
    UnitRecorder rec;
    rec.advance(SpanKind::Startup, 5);
    rec.advance(SpanKind::Active, 3);
    rec.advance(SpanKind::Active, 2);
    rec.advance(SpanKind::Active, 0); // no-op
    rec.advance(SpanKind::IdleScan, 1);
    ASSERT_EQ(rec.spans().size(), 3u);
    EXPECT_EQ(rec.spans()[1].begin, 5u);
    EXPECT_EQ(rec.spans()[1].end, 10u);
    EXPECT_EQ(rec.spans()[1].kind, SpanKind::Active);
    EXPECT_EQ(rec.cursor(), 11u);
}

TEST(UnitRecorder, TaskSpansFeedTaskCyclesHistogram)
{
    UnitRecorder rec;
    rec.beginTask();
    rec.advance(SpanKind::Active, 7);
    rec.endTask();
    rec.beginTask();
    rec.advance(SpanKind::IdleScan, 2);
    rec.endTask();
    ASSERT_EQ(rec.tasks().size(), 2u);
    EXPECT_EQ(rec.tasks()[0].end - rec.tasks()[0].begin, 7u);
    const obs::Histogram &h =
        rec.histograms().get(HistId::TaskCycles);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.sum(), 9u);
}

TEST(UnitRecorder, SpanBudgetTruncatesButKeepsClock)
{
    UnitRecorder rec;
    // Alternate kinds so no coalescing happens; overflow the budget.
    for (std::size_t i = 0; i < UnitRecorder::kMaxSpans + 10; ++i)
        rec.advance(i % 2 ? SpanKind::Active : SpanKind::IdleScan, 1);
    EXPECT_EQ(rec.spans().size(), UnitRecorder::kMaxSpans);
    // The clock keeps counting past the truncation point, and exactly
    // one marker instant records the overflow.
    EXPECT_EQ(rec.cursor(), UnitRecorder::kMaxSpans + 10);
    std::size_t markers = 0;
    for (const obs::Instant &instant : rec.instants())
        if (instant.kind == InstantKind::SpanBudgetExceeded)
            ++markers;
    EXPECT_EQ(markers, 1u);
}

TEST(TraceSink, RecorderInactiveOutsideScopedUnit)
{
    // Off by default: no recorder on this thread.
    EXPECT_EQ(obs::recorder(), nullptr);
    EXPECT_EQ(obs::traceSink(), nullptr);
    {
        TracingScope tracing;
        ASSERT_NE(obs::traceSink(), nullptr);
        const std::size_t run = obs::globalSink().beginRun("t", 1);
        {
            obs::ScopedUnitTrace scope(obs::traceSink(), run, 0, "u");
            ASSERT_NE(obs::recorder(), nullptr);
            obs::recorder()->advance(SpanKind::Active, 3);
        }
        // Scope closed: buffer submitted, thread recorder detached.
        EXPECT_EQ(obs::recorder(), nullptr);
        EXPECT_EQ(obs::globalSink().runCount(), 1u);
    }
    EXPECT_EQ(obs::recorder(), nullptr);
}

} // namespace
} // namespace antsim
