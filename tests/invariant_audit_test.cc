/**
 * @file
 * Tests for the invariant-audit subsystem (src/verify).
 *
 * Two directions: the auditor must catch seeded violations (corrupted
 * counter sets, malformed CSR arrays, NaN outputs), and it must pass
 * cleanly on everything the real models produce -- including the
 * paper-regression workloads, which run here with audits enabled.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "ant/ant_pe.hh"
#include "baselines/inner_product.hh"
#include "scnn/scnn_pe.hh"
#include "tensor/sparsify.hh"
#include "util/audit.hh"
#include "util/rng.hh"
#include "verify/audit_hooks.hh"
#include "verify/invariant_auditor.hh"
#include "workload/runner.hh"

namespace antsim {
namespace {

/** A consistent counter set satisfying every law. */
CounterSet
consistentCounters()
{
    CounterSet c;
    c.set(Counter::MultsExecuted, 100);
    c.set(Counter::MultsValid, 70);
    c.set(Counter::MultsRcp, 30);
    c.set(Counter::RcpsAvoided, 50);
    c.set(Counter::AccumAdds, 70);
    c.set(Counter::OutputIndexCalcs, 100);
    c.set(Counter::StartupCycles, 5);
    c.set(Counter::ActiveCycles, 40);
    c.set(Counter::IdleScanCycles, 12);
    c.set(Counter::Cycles, 57);
    return c;
}

AuditScope
cartesianScope()
{
    AuditScope scope;
    scope.space = ProductSpace::Cartesian;
    scope.totalProducts = 150; // 100 executed + 50 avoided
    scope.denseProducts = 400;
    return scope;
}

/** True when @p report flags @p law (possibly among others). */
bool
flags(const AuditReport &report, const std::string &law)
{
    for (const InvariantViolation &v : report.violations) {
        if (v.law == law)
            return true;
    }
    return false;
}

TEST(InvariantAuditor, ConsistentCountersPass)
{
    const InvariantAuditor auditor;
    const AuditReport report =
        auditor.auditCounters(consistentCounters(), cartesianScope());
    EXPECT_TRUE(report.ok()) << report.toString();
    EXPECT_EQ(report.toString(), "all invariants hold");
    EXPECT_EQ(report.toJson(), "[]");
}

TEST(InvariantAuditor, CatchesCorruptedMultSplit)
{
    CounterSet c = consistentCounters();
    c.set(Counter::MultsValid, 71); // valid + rcp no longer == executed
    const InvariantAuditor auditor;
    const AuditReport report = auditor.auditCounters(c, cartesianScope());
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(flags(report, "mults-split")) << report.toString();
    // AccumAdds == MultsValid also breaks: both laws must surface.
    EXPECT_TRUE(flags(report, "accum-valid")) << report.toString();
}

TEST(InvariantAuditor, CatchesLostProducts)
{
    CounterSet c = consistentCounters();
    c.set(Counter::RcpsAvoided, 49); // one product vanished
    const InvariantAuditor auditor;
    const AuditReport report = auditor.auditCounters(c, cartesianScope());
    EXPECT_TRUE(flags(report, "product-total")) << report.toString();
}

TEST(InvariantAuditor, CatchesCycleLeak)
{
    CounterSet c = consistentCounters();
    c.set(Counter::Cycles, 60); // 3 cycles unaccounted for
    const InvariantAuditor auditor;
    const AuditReport report = auditor.auditCounters(c, cartesianScope());
    EXPECT_TRUE(flags(report, "cycle-split")) << report.toString();
}

TEST(InvariantAuditor, CatchesRcpBoundViolation)
{
    CounterSet c = consistentCounters();
    AuditScope scope = cartesianScope();
    scope.denseProducts = 60; // avoided + rcp = 80 > 60
    scope.totalProducts.reset();
    const InvariantAuditor auditor;
    const AuditReport report = auditor.auditCounters(c, scope);
    EXPECT_TRUE(flags(report, "rcp-bound")) << report.toString();
}

TEST(InvariantAuditor, InnerProductSpaceForbidsRcps)
{
    CounterSet c;
    c.set(Counter::MultsExecuted, 10);
    c.set(Counter::MultsValid, 10);
    c.set(Counter::AccumAdds, 10);
    c.set(Counter::MultsRcp, 1); // impossible for an inner product
    c.set(Counter::MultsExecuted, 11);
    AuditScope scope;
    scope.space = ProductSpace::InnerProduct;
    const InvariantAuditor auditor;
    const AuditReport report = auditor.auditCounters(c, scope);
    EXPECT_TRUE(flags(report, "no-rcp-space")) << report.toString();
}

TEST(InvariantAuditor, SlackAbsorbsScalingRounding)
{
    CounterSet c = consistentCounters();
    c.scale(7, 3); // per-counter rounding perturbs the equalities
    AuditScope scope;
    scope.space = ProductSpace::Mixed;
    scope.slack = 2;
    const InvariantAuditor auditor;
    EXPECT_TRUE(auditor.auditCounters(c, scope).ok());
}

TEST(InvariantAuditor, MalformedCsrDecreasingRowPtr)
{
    const InvariantAuditor auditor;
    const AuditReport report = auditor.auditCsrArrays(
        /*height=*/2, /*width=*/4, std::vector<float>{1.0f, 2.0f},
        std::vector<std::uint32_t>{0, 1}, std::vector<std::uint32_t>{0, 2, 1});
    EXPECT_TRUE(flags(report, "csr-row-ptr")) << report.toString();
}

TEST(InvariantAuditor, MalformedCsrUnsortedColumns)
{
    const InvariantAuditor auditor;
    const AuditReport report = auditor.auditCsrArrays(
        /*height=*/1, /*width=*/4, std::vector<float>{1.0f, 2.0f},
        std::vector<std::uint32_t>{2, 1}, std::vector<std::uint32_t>{0, 2});
    EXPECT_TRUE(flags(report, "csr-columns")) << report.toString();
}

TEST(InvariantAuditor, MalformedCsrColumnOutOfRange)
{
    const InvariantAuditor auditor;
    const AuditReport report = auditor.auditCsrArrays(
        /*height=*/1, /*width=*/2, std::vector<float>{1.0f},
        std::vector<std::uint32_t>{5}, std::vector<std::uint32_t>{0, 1});
    EXPECT_TRUE(flags(report, "csr-columns")) << report.toString();
}

TEST(InvariantAuditor, MalformedCsrNnzMismatch)
{
    const InvariantAuditor auditor;
    const AuditReport report = auditor.auditCsrArrays(
        /*height=*/1, /*width=*/4, std::vector<float>{1.0f, 2.0f},
        std::vector<std::uint32_t>{0, 1}, std::vector<std::uint32_t>{0, 1});
    EXPECT_TRUE(flags(report, "csr-nnz")) << report.toString();
}

TEST(InvariantAuditor, WellFormedCsrPasses)
{
    Rng rng(7);
    const CsrMatrix m =
        CsrMatrix::fromDense(bernoulliPlane(9, 9, 0.6, rng));
    const InvariantAuditor auditor;
    EXPECT_TRUE(auditor.auditCsr(m).ok());
}

TEST(InvariantAuditor, NonFiniteOutputCaught)
{
    const ProblemSpec spec = ProblemSpec::conv(3, 3, 8, 8);
    Dense2d<double> out(spec.outH(), spec.outW());
    out.at(1, 1) = std::numeric_limits<double>::quiet_NaN();
    const InvariantAuditor auditor;
    const AuditReport report = auditor.auditOutput(spec, out);
    EXPECT_TRUE(flags(report, "output-finite")) << report.toString();
}

TEST(InvariantAuditor, WrongOutputShapeCaught)
{
    const ProblemSpec spec = ProblemSpec::conv(3, 3, 8, 8);
    const Dense2d<double> out(2, 2);
    const InvariantAuditor auditor;
    EXPECT_TRUE(flags(auditor.auditOutput(spec, out), "output-shape"));
}

TEST(InvariantAuditor, JsonReportIsMachineReadable)
{
    CounterSet c = consistentCounters();
    c.set(Counter::Cycles, 1000);
    const InvariantAuditor auditor;
    const std::string json =
        auditor.auditCounters(c, cartesianScope()).toJson();
    EXPECT_NE(json.find("{\"law\":\"cycle-split\",\"detail\":\""),
              std::string::npos)
        << json;
}

TEST(AuditHooks, PanicsOnCorruptedAggregate)
{
    ASSERT_TRUE(audit::enabled()); // forced on by audit_env.cc
    CounterSet c = consistentCounters();
    c.set(Counter::AccumAdds, 1); // != MultsValid
    EXPECT_DEATH(verify::auditAggregateOrPanic("test counters", c, 0),
                 "invariant audit failed.*accum-valid");
}

TEST(AuditHooks, SilentWhenDisabled)
{
    CounterSet c = consistentCounters();
    c.set(Counter::AccumAdds, 1);
    audit::setEnabled(false);
    verify::auditAggregateOrPanic("test counters", c, 0); // no panic
    audit::setEnabled(true);
    SUCCEED();
}

TEST(AuditHooks, PipelineCensusChecked)
{
    EXPECT_DEATH(verify::auditPipelineCountsOrPanic("test pipeline",
                                                    /*executed=*/10,
                                                    /*valid=*/5,
                                                    /*residual_rcps=*/4,
                                                    /*total_products=*/100),
                 "invariant audit failed.*mults-split");
}

/** Every real model passes its own audit on a representative pair. */
TEST(AuditHooks, RealModelsPassAudit)
{
    ASSERT_TRUE(audit::enabled());
    Rng rng(11);
    const ProblemSpec spec = ProblemSpec::conv(3, 3, 12, 12);
    const CsrMatrix kernel =
        CsrMatrix::fromDense(bernoulliPlane(3, 3, 0.5, rng));
    const CsrMatrix image =
        CsrMatrix::fromDense(bernoulliPlane(12, 12, 0.8, rng));

    ScnnPe scnn;
    AntPe ant;
    DenseInnerProductPe dense;
    TensorDashPe tdash;
    for (PeModel *pe :
         std::vector<PeModel *>{&scnn, &ant, &dense, &tdash}) {
        const PeResult r = pe->runPair(spec, kernel, image, true);
        EXPECT_GT(r.counters.get(Counter::Cycles), 0u) << pe->name();
    }
}

/** The paper-regression workload path runs clean under full audits. */
TEST(AuditHooks, RunnerWorkloadsPassAudit)
{
    ASSERT_TRUE(audit::enabled());
    RunConfig cfg;
    cfg.sampleCap = 2;
    ScnnPe scnn;
    AntPe ant;
    const auto profile = SparsityProfile::swat(0.9);
    const auto layers = resnet18Cifar();
    const auto s = runConvNetwork(scnn, layers, profile, cfg);
    const auto a = runConvNetwork(ant, layers, profile, cfg);
    EXPECT_GT(s.total.get(Counter::Cycles), a.total.get(Counter::Cycles));
}

} // namespace
} // namespace antsim
