/**
 * @file
 * Tests for the operation-counter energy model (Sec. 6.3).
 */

#include <gtest/gtest.h>

#include "sim/energy.hh"

namespace antsim {
namespace {

TEST(Energy, ZeroCountersZeroEnergy)
{
    const EnergyModel model;
    CounterSet c;
    EXPECT_DOUBLE_EQ(model.totalPj(c), 0.0);
}

TEST(Energy, MultiplyAttribution)
{
    const EnergyModel model;
    CounterSet c;
    c.add(Counter::MultsExecuted, 100);
    const EnergyBreakdown b = model.evaluate(c);
    EXPECT_DOUBLE_EQ(b.multiplyPj, 100 * model.params().multBf16Pj);
    EXPECT_DOUBLE_EQ(b.accumulatePj, 0.0);
    EXPECT_DOUBLE_EQ(b.totalPj(), b.multiplyPj);
}

TEST(Energy, AccumulateAttribution)
{
    const EnergyModel model;
    CounterSet c;
    c.add(Counter::AccumAdds, 10);
    EXPECT_DOUBLE_EQ(model.evaluate(c).accumulatePj,
                     10 * model.params().addBf16Pj);
}

TEST(Energy, IndexLogicCoversComparesAndOutputCalcs)
{
    const EnergyModel model;
    CounterSet c;
    c.add(Counter::IndexCompares, 4);
    c.add(Counter::OutputIndexCalcs, 3);
    EXPECT_DOUBLE_EQ(model.evaluate(c).indexLogicPj,
                     (4 + 2 * 3) * model.params().addInt32Pj);
}

TEST(Energy, SramAttribution)
{
    const EnergyModel model;
    CounterSet c;
    c.add(Counter::SramValueReads, 2);
    c.add(Counter::SramIndexReads, 3);
    c.add(Counter::SramRowPtrReads, 5);
    c.add(Counter::SramWrites, 7);
    const double want = (2 + 3) * model.params().sramRead64Pj +
        5 * model.params().sramRowPtrPj + 7 * model.params().accumWritePj;
    EXPECT_DOUBLE_EQ(model.evaluate(c).sramPj, want);
}

TEST(Energy, MonotoneInEveryCounter)
{
    const EnergyModel model;
    CounterSet base;
    base.add(Counter::MultsExecuted, 10);
    const double base_pj = model.totalPj(base);
    for (Counter counter : {Counter::MultsExecuted, Counter::AccumAdds,
                            Counter::IndexCompares,
                            Counter::SramValueReads, Counter::SramWrites}) {
        CounterSet more = base;
        more.add(counter, 5);
        EXPECT_GE(model.totalPj(more), base_pj)
            << counterName(counter);
    }
}

TEST(Energy, CyclesDoNotCostEnergyDirectly)
{
    // Energy comes from operations, not from idle cycles (the paper's
    // methodology, Sec. 6.3).
    const EnergyModel model;
    CounterSet c;
    c.add(Counter::Cycles, 1000000);
    c.add(Counter::IdleScanCycles, 500);
    EXPECT_DOUBLE_EQ(model.totalPj(c), 0.0);
}

TEST(Energy, SramDominatesComputeForEqualCounts)
{
    // Sanity on relative magnitudes: an SRAM access costs more than a
    // multiply, which costs more than an integer add.
    const EnergyParams p;
    EXPECT_GT(p.sramRead64Pj, p.multBf16Pj);
    EXPECT_GT(p.multBf16Pj, p.addInt32Pj);
}

TEST(Energy, BreakdownToStringMentionsTotal)
{
    EnergyBreakdown b;
    b.multiplyPj = 1e6;
    EXPECT_NE(b.toString().find("energy total"), std::string::npos);
}

TEST(Energy, CustomParams)
{
    EnergyParams params;
    params.multBf16Pj = 1.0;
    const EnergyModel model(params);
    CounterSet c;
    c.add(Counter::MultsExecuted, 7);
    EXPECT_DOUBLE_EQ(model.totalPj(c), 7.0);
}

} // namespace
} // namespace antsim
