/**
 * @file
 * Monotonicity properties of the analytical estimator (src/estimate):
 * predicted cycles must not decrease when density rises (more non-zero
 * work) and must not increase when the multiplier array grows (more
 * parallelism). These orderings catch sign and inversion bugs that no
 * golden-value comparison would -- a model can be within 10% of the
 * reference and still rank design points backwards, which is fatal for
 * the sweep_dse use case.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ant/ant_pe.hh"
#include "baselines/inner_product.hh"
#include "estimate/estimate.hh"
#include "scnn/scnn_pe.hh"
#include "workload/runner.hh"

namespace antsim {
namespace {

std::vector<ConvLayer>
probeNetwork()
{
    return {
        {"p0", 3, 16, 32, 32, 3, 1, 1},
        {"p1", 16, 16, 16, 16, 3, 2, 1},
        {"p2", 16, 8, 8, 8, 1, 1, 0},
    };
}

std::uint64_t
estimatedCycles(const estimate::PeDescriptor &pe, double sparsity)
{
    const NetworkStats stats = estimate::estimateConvNetwork(
        pe, probeNetwork(), SparsityProfile::swat(sparsity), RunConfig{});
    return stats.total.get(Counter::Cycles);
}

/**
 * Slack for the monotone orderings: the estimator accumulates in the
 * real domain and rounds each counter once at the end, so two design
 * points whose true predictions are equal can differ by a cycle of
 * rounding noise. 0.2% + 1 cycle is far below any swing that could
 * reorder design points in a sweep.
 */
std::uint64_t
roundingSlack(std::uint64_t cycles)
{
    return 1 + cycles / 500;
}

const std::vector<double> &
densityGrid()
{
    // Densities 1 - sparsity from 5% to 100%.
    static const std::vector<double> sparsities = {
        0.95, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1, 0.0};
    return sparsities;
}

TEST(EstimateProperty, AntCyclesMonotoneInDensity)
{
    const auto pe = estimate::PeDescriptor::of(AntPeConfig{});
    std::uint64_t prev = 0;
    for (double s : densityGrid()) {
        const std::uint64_t cycles = estimatedCycles(pe, s);
        EXPECT_GE(cycles + roundingSlack(cycles), prev) << "sparsity " << s;
        prev = cycles;
    }
}

TEST(EstimateProperty, ScnnCyclesMonotoneInDensity)
{
    const auto pe = estimate::PeDescriptor::of(ScnnPeConfig{});
    std::uint64_t prev = 0;
    for (double s : densityGrid()) {
        const std::uint64_t cycles = estimatedCycles(pe, s);
        EXPECT_GE(cycles + roundingSlack(cycles), prev) << "sparsity " << s;
        prev = cycles;
    }
}

TEST(EstimateProperty, TensorDashCyclesMonotoneInDensity)
{
    const auto pe =
        estimate::PeDescriptor::ofTensorDash(InnerProductConfig{});
    std::uint64_t prev = 0;
    for (double s : densityGrid()) {
        const std::uint64_t cycles = estimatedCycles(pe, s);
        EXPECT_GE(cycles + roundingSlack(cycles), prev) << "sparsity " << s;
        prev = cycles;
    }
}

TEST(EstimateProperty, AntCyclesMonotoneInMultipliers)
{
    // Larger n x n array (with the FNIR window scaled to stay >= n)
    // must never predict more cycles at fixed work.
    for (double sparsity : {0.9, 0.5}) {
        std::uint64_t prev = UINT64_MAX;
        for (std::uint32_t n : {2u, 4u, 8u, 16u}) {
            AntPeConfig cfg;
            cfg.n = n;
            cfg.k = 4 * n;
            const std::uint64_t cycles =
                estimatedCycles(estimate::PeDescriptor::of(cfg), sparsity);
            EXPECT_LE(cycles, prev == UINT64_MAX ? prev : prev + roundingSlack(prev)) << "n " << n << " sparsity " << sparsity;
            prev = cycles;
        }
    }
}

TEST(EstimateProperty, ScnnCyclesMonotoneInMultipliers)
{
    for (double sparsity : {0.9, 0.5}) {
        std::uint64_t prev = UINT64_MAX;
        for (std::uint32_t n : {2u, 4u, 8u, 16u}) {
            ScnnPeConfig cfg;
            cfg.n = n;
            const std::uint64_t cycles =
                estimatedCycles(estimate::PeDescriptor::of(cfg), sparsity);
            EXPECT_LE(cycles, prev == UINT64_MAX ? prev : prev + roundingSlack(prev)) << "n " << n << " sparsity " << sparsity;
            prev = cycles;
        }
    }
}

TEST(EstimateProperty, DenseCyclesMonotoneInMultipliers)
{
    std::uint64_t prev = UINT64_MAX;
    for (std::uint32_t m : {4u, 8u, 16u, 32u, 64u}) {
        InnerProductConfig cfg;
        cfg.multipliers = m;
        const std::uint64_t cycles =
            estimatedCycles(estimate::PeDescriptor::ofDense(cfg), 0.9);
        EXPECT_LE(cycles, prev == UINT64_MAX ? prev : prev + roundingSlack(prev)) << "multipliers " << m;
        prev = cycles;
    }
}

TEST(EstimateProperty, WiderFnirWindowNeverSlower)
{
    // At fixed n, a wider FNIR comparator window consumes candidates
    // faster, so predicted cycles must be non-increasing in k.
    std::uint64_t prev = UINT64_MAX;
    for (std::uint32_t k : {4u, 8u, 16u, 32u}) {
        AntPeConfig cfg;
        cfg.k = k;
        const std::uint64_t cycles =
            estimatedCycles(estimate::PeDescriptor::of(cfg), 0.9);
        EXPECT_LE(cycles, prev == UINT64_MAX ? prev : prev + roundingSlack(prev)) << "k " << k;
        prev = cycles;
    }
}

} // namespace
} // namespace antsim
