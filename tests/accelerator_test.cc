/**
 * @file
 * Tests for the multi-PE accelerator scheduler (chunking + load
 * balancing, Sec. 6.1).
 */

#include <gtest/gtest.h>

#include "ant/ant_pe.hh"
#include "conv/dense_conv.hh"
#include "scnn/scnn_pe.hh"
#include "sim/accelerator.hh"
#include "tensor/sparsify.hh"
#include "util/rng.hh"

namespace antsim {
namespace {

TEST(Accelerator, SingleChunkMatchesBarePe)
{
    Rng rng(1);
    const auto kernel_plane = bernoulliPlane(3, 3, 0.4, rng);
    const auto image_plane = bernoulliPlane(10, 10, 0.5, rng);
    const auto spec = ProblemSpec::conv(3, 3, 10, 10);
    const CsrMatrix kernel = CsrMatrix::fromDense(kernel_plane);
    const CsrMatrix image = CsrMatrix::fromDense(image_plane);

    ScnnPe pe;
    AcceleratorConfig cfg;
    cfg.numPes = 1;
    Accelerator accel(pe, cfg);
    const auto accel_result = accel.runProblem(spec, kernel, image, true);
    const auto pe_result = pe.runPair(spec, kernel, image, true);
    EXPECT_EQ(accel_result.counters.get(Counter::Cycles),
              pe_result.counters.get(Counter::Cycles));
    EXPECT_EQ(accel_result.counters.get(Counter::TasksProcessed), 1u);
    EXPECT_LT(maxAbsDiff(accel_result.output, pe_result.output), 1e-12);
}

TEST(Accelerator, ChunkingPreservesFunctionalOutput)
{
    Rng rng(2);
    const auto kernel_plane = bernoulliPlane(8, 8, 0.3, rng);
    const auto image_plane = bernoulliPlane(16, 16, 0.3, rng);
    const auto spec = ProblemSpec::conv(8, 8, 16, 16);

    AntPe pe;
    AcceleratorConfig cfg;
    cfg.chunkCapacity = 16; // force many chunks
    Accelerator accel(pe, cfg);
    const auto result =
        accel.runProblem(spec, CsrMatrix::fromDense(kernel_plane),
                         CsrMatrix::fromDense(image_plane), true);
    EXPECT_GT(result.counters.get(Counter::TasksProcessed), 1u);
    EXPECT_LT(maxAbsDiff(result.output,
                         referenceExecute(spec, kernel_plane, image_plane)),
              1e-9);
}

TEST(Accelerator, PerfectLoadBalanceIsCeilingOfSum)
{
    Rng rng(3);
    const auto kernel_plane = bernoulliPlane(6, 6, 0.4, rng);
    const auto image_plane = bernoulliPlane(12, 12, 0.4, rng);
    const auto spec = ProblemSpec::conv(6, 6, 12, 12);
    const CsrMatrix kernel = CsrMatrix::fromDense(kernel_plane);
    const CsrMatrix image = CsrMatrix::fromDense(image_plane);

    ScnnPe pe;
    AcceleratorConfig one;
    one.numPes = 1;
    one.chunkCapacity = 8;
    AcceleratorConfig many = one;
    many.numPes = 64;
    const auto r1 = Accelerator(pe, one).runProblem(spec, kernel, image);
    const auto r64 = Accelerator(pe, many).runProblem(spec, kernel, image);
    const std::uint64_t total = r1.counters.get(Counter::Cycles);
    EXPECT_EQ(r64.counters.get(Counter::Cycles), (total + 63) / 64);
}

TEST(Accelerator, GreedyLptNeverBeatsPerfect)
{
    Rng rng(4);
    const auto kernel_plane = bernoulliPlane(8, 8, 0.2, rng);
    const auto image_plane = bernoulliPlane(14, 14, 0.2, rng);
    const auto spec = ProblemSpec::conv(8, 8, 14, 14);
    const CsrMatrix kernel = CsrMatrix::fromDense(kernel_plane);
    const CsrMatrix image = CsrMatrix::fromDense(image_plane);

    ScnnPe pe;
    AcceleratorConfig perfect;
    perfect.numPes = 4;
    perfect.chunkCapacity = 10;
    AcceleratorConfig greedy = perfect;
    greedy.loadBalance = LoadBalance::GreedyLpt;
    const auto rp =
        Accelerator(pe, perfect).runProblem(spec, kernel, image);
    const auto rg = Accelerator(pe, greedy).runProblem(spec, kernel, image);
    EXPECT_GE(rg.counters.get(Counter::Cycles),
              rp.counters.get(Counter::Cycles));
}

TEST(Accelerator, CountersSumOverTasks)
{
    // Executed multiplies must be invariant to chunking (every product
    // happens exactly once regardless of the chunk split).
    Rng rng(5);
    const auto kernel_plane = bernoulliPlane(6, 6, 0.5, rng);
    const auto image_plane = bernoulliPlane(12, 12, 0.5, rng);
    const auto spec = ProblemSpec::conv(6, 6, 12, 12);
    const CsrMatrix kernel = CsrMatrix::fromDense(kernel_plane);
    const CsrMatrix image = CsrMatrix::fromDense(image_plane);

    ScnnPe pe;
    AcceleratorConfig big;
    big.chunkCapacity = 4096;
    AcceleratorConfig small;
    small.chunkCapacity = 5;
    const auto rb = Accelerator(pe, big).runProblem(spec, kernel, image);
    const auto rs = Accelerator(pe, small).runProblem(spec, kernel, image);
    EXPECT_EQ(rb.counters.get(Counter::MultsExecuted),
              rs.counters.get(Counter::MultsExecuted));
    EXPECT_EQ(rb.counters.get(Counter::MultsValid),
              rs.counters.get(Counter::MultsValid));
    // But chunking pays more startup.
    EXPECT_GT(rs.counters.get(Counter::StartupCycles),
              rb.counters.get(Counter::StartupCycles));
}

TEST(Accelerator, RunTasksAggregates)
{
    Rng rng(6);
    const auto kernel_plane = bernoulliPlane(3, 3, 0.4, rng);
    const auto image_plane = bernoulliPlane(9, 9, 0.4, rng);
    const auto spec = ProblemSpec::conv(3, 3, 9, 9);
    const CsrMatrix kernel = CsrMatrix::fromDense(kernel_plane);
    const CsrMatrix image = CsrMatrix::fromDense(image_plane);

    ScnnPe pe;
    AcceleratorConfig cfg;
    cfg.numPes = 2;
    Accelerator accel(pe, cfg);
    std::vector<std::pair<ProblemSpec, ChunkPair>> tasks = {
        {spec, {&kernel, &image}}, {spec, {&kernel, &image}}};
    const auto r = accel.runTasks(tasks);
    EXPECT_EQ(r.counters.get(Counter::TasksProcessed), 2u);
    const auto single = pe.runPair(spec, kernel, image, false);
    EXPECT_EQ(r.counters.get(Counter::MultsExecuted),
              2 * single.counters.get(Counter::MultsExecuted));
    EXPECT_EQ(r.counters.get(Counter::Cycles),
              single.counters.get(Counter::Cycles));
}

TEST(AcceleratorDeathTest, BadConfig)
{
    ScnnPe pe;
    AcceleratorConfig cfg;
    cfg.numPes = 0;
    EXPECT_DEATH(Accelerator(pe, cfg), "at least one PE");
}

} // namespace
} // namespace antsim
