/**
 * @file
 * Fixed-bin simulated-time histograms (src/obs/histogram.hh): bucket
 * placement for both bin kinds, the summary moments, and the merge
 * algebra the parallel engine relies on -- `operator+=` must be
 * associative and insertion-order-independent so the merged registry
 * is identical no matter how the per-worker partials are combined.
 */

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "obs/histogram.hh"

namespace antsim {
namespace obs {
namespace {

TEST(Histogram, Log2BucketPlacement)
{
    Histogram h{histSpec(HistId::TaskCycles)};
    // Bucket 0 holds exactly the value 0; bucket i holds
    // [2^(i-1), 2^i).
    h.add(0);
    h.add(1);
    h.add(2);
    h.add(3);
    h.add(4);
    EXPECT_EQ(h.bins()[0], 1u); // {0}
    EXPECT_EQ(h.bins()[1], 1u); // {1}
    EXPECT_EQ(h.bins()[2], 2u); // {2, 3}
    EXPECT_EQ(h.bins()[3], 1u); // {4..7}
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 10u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 4u);
}

TEST(Histogram, Log2OverflowClampsToLastBin)
{
    const HistogramSpec spec = histSpec(HistId::ImageRowNnz);
    Histogram h{spec};
    h.add(~std::uint64_t{0});
    EXPECT_EQ(h.bins().back(), 1u);
    EXPECT_EQ(h.count(), 1u);
}

TEST(Histogram, LinearBucketPlacement)
{
    // rcp_permille: 21 linear bins of width 50 from 0.
    Histogram h{histSpec(HistId::RcpPermille)};
    h.add(0);
    h.add(49);
    h.add(50);
    h.add(999);
    h.add(5000); // beyond the last edge: clamped
    EXPECT_EQ(h.bins()[0], 2u);
    EXPECT_EQ(h.bins()[1], 1u);
    EXPECT_EQ(h.bins()[19], 1u);
    EXPECT_EQ(h.bins().back(), 1u);
    EXPECT_EQ(h.count(), 5u);
}

TEST(Histogram, EmptyHistogramMoments)
{
    Histogram h{histSpec(HistId::TaskCycles)};
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
}

/** Fill a registry with deterministic pseudo-random samples. */
HistogramRegistry
sampledRegistry(std::uint32_t seed, std::size_t samples)
{
    std::mt19937_64 rng(seed);
    HistogramRegistry reg;
    for (std::size_t i = 0; i < samples; ++i) {
        reg.add(HistId::TaskCycles, rng() % (1u << 20));
        reg.add(HistId::ImageRowNnz, rng() % 512);
        reg.add(HistId::RcpPermille, rng() % 1100);
        reg.add(HistId::FnirValidPartners, rng() % 20);
    }
    return reg;
}

TEST(HistogramRegistry, MergeIsAssociative)
{
    const HistogramRegistry a = sampledRegistry(1, 257);
    const HistogramRegistry b = sampledRegistry(2, 64);
    const HistogramRegistry c = sampledRegistry(3, 1023);

    HistogramRegistry left = a; // (a + b) + c
    left += b;
    left += c;
    HistogramRegistry bc = b; // a + (b + c)
    bc += c;
    HistogramRegistry right = a;
    right += bc;
    EXPECT_TRUE(left == right);
}

TEST(HistogramRegistry, MergeIsPermutationInvariant)
{
    // The parallel engine merges per-worker partials in task-index
    // order, but the merged registry must not depend on how the
    // samples were partitioned or in which order partials combine.
    std::mt19937_64 rng(42);
    std::vector<std::uint64_t> values(500);
    for (auto &v : values)
        v = rng() % (1u << 16);

    HistogramRegistry forward;
    for (const std::uint64_t v : values)
        forward.add(HistId::TaskCycles, v);

    HistogramRegistry reversed;
    for (auto it = values.rbegin(); it != values.rend(); ++it)
        reversed.add(HistId::TaskCycles, *it);
    EXPECT_TRUE(forward == reversed);

    // Split into 7 round-robin partials, merge in two different
    // orders.
    std::vector<HistogramRegistry> parts(7);
    for (std::size_t i = 0; i < values.size(); ++i)
        parts[i % parts.size()].add(HistId::TaskCycles, values[i]);
    HistogramRegistry ascending;
    for (const HistogramRegistry &part : parts)
        ascending += part;
    HistogramRegistry descending;
    for (auto it = parts.rbegin(); it != parts.rend(); ++it)
        descending += *it;
    EXPECT_TRUE(ascending == descending);
    EXPECT_TRUE(ascending == forward);
}

TEST(HistogramRegistry, MergePreservesMoments)
{
    HistogramRegistry a;
    a.add(HistId::FnirValidPartners, 3);
    a.add(HistId::FnirValidPartners, 9);
    HistogramRegistry b;
    b.add(HistId::FnirValidPartners, 1);
    a += b;
    const Histogram &h = a.get(HistId::FnirValidPartners);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 13u);
    EXPECT_EQ(h.min(), 1u);
    EXPECT_EQ(h.max(), 9u);
}

TEST(HistogramRegistry, NamesAreStable)
{
    // Report schema and trace_summary.py key off these exact names.
    EXPECT_STREQ(histName(HistId::TaskCycles), "task_cycles");
    EXPECT_STREQ(histName(HistId::ImageRowNnz), "image_row_nnz");
    EXPECT_STREQ(histName(HistId::RcpPermille), "rcp_permille");
    EXPECT_STREQ(histName(HistId::FnirValidPartners),
                 "fnir_valid_partners");
}

} // namespace
} // namespace obs
} // namespace antsim
