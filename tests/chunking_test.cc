/**
 * @file
 * Tests for buffer-capacity chunking (the SCNN+ operand split).
 */

#include <gtest/gtest.h>

#include "conv/dense_conv.hh"
#include "conv/outer_product.hh"
#include "sim/chunking.hh"
#include "tensor/sparsify.hh"
#include "util/rng.hh"

namespace antsim {
namespace {

TEST(Chunking, SmallMatrixSingleChunk)
{
    Rng rng(1);
    const CsrMatrix m =
        CsrMatrix::fromDense(bernoulliPlane(8, 8, 0.5, rng));
    const auto chunks = chunkByCapacity(m, 1000);
    ASSERT_EQ(chunks.size(), 1u);
    EXPECT_EQ(chunks[0], m);
}

TEST(Chunking, EmptyMatrixYieldsOneEmptyChunk)
{
    const CsrMatrix m(5, 5);
    const auto chunks = chunkByCapacity(m, 16);
    ASSERT_EQ(chunks.size(), 1u);
    EXPECT_EQ(chunks[0].nnz(), 0u);
    EXPECT_EQ(chunks[0].height(), 5u);
}

TEST(Chunking, ChunkSizesRespectCapacity)
{
    Rng rng(2);
    const CsrMatrix m =
        CsrMatrix::fromDense(bernoulliPlane(20, 20, 0.3, rng));
    const std::uint32_t cap = 50;
    const auto chunks = chunkByCapacity(m, cap);
    std::uint32_t total = 0;
    for (const auto &chunk : chunks) {
        EXPECT_LE(chunk.nnz(), cap);
        EXPECT_EQ(chunk.height(), m.height());
        EXPECT_EQ(chunk.width(), m.width());
        total += chunk.nnz();
    }
    EXPECT_EQ(total, m.nnz());
    EXPECT_EQ(chunks.size(), (m.nnz() + cap - 1) / cap);
}

TEST(Chunking, ChunksPartitionEntries)
{
    Rng rng(3);
    const Dense2d<float> plane = bernoulliPlane(15, 15, 0.4, rng);
    const CsrMatrix m = CsrMatrix::fromDense(plane);
    const auto chunks = chunkByCapacity(m, 37);
    // Summing the decompressed chunks must reproduce the plane.
    Dense2d<float> sum(15, 15);
    for (const auto &chunk : chunks) {
        const auto d = chunk.toDense();
        for (std::size_t i = 0; i < sum.data().size(); ++i)
            sum.data()[i] += d.data()[i];
    }
    EXPECT_EQ(sum, plane);
}

TEST(Chunking, ChunkedOuterProductIsExact)
{
    // Functional linearity: executing all chunk pairs and summing
    // equals the un-chunked convolution.
    Rng rng(4);
    const auto kernel_plane = bernoulliPlane(6, 6, 0.4, rng);
    const auto image_plane = bernoulliPlane(14, 14, 0.5, rng);
    const auto spec = ProblemSpec::conv(6, 6, 14, 14);
    const CsrMatrix kernel = CsrMatrix::fromDense(kernel_plane);
    const CsrMatrix image = CsrMatrix::fromDense(image_plane);

    const auto kernel_chunks = chunkByCapacity(kernel, 7);
    const auto image_chunks = chunkByCapacity(image, 13);

    Dense2d<double> sum(spec.outH(), spec.outW());
    std::uint64_t products = 0;
    for (const auto &pair : allChunkPairs(kernel_chunks, image_chunks)) {
        const auto r = sparseOuterProduct(spec, *pair.kernel, *pair.image);
        products += r.census.nonzeroProducts;
        for (std::size_t i = 0; i < sum.data().size(); ++i)
            sum.data()[i] += r.output.data()[i];
    }
    // Same products, same output.
    EXPECT_EQ(products,
              static_cast<std::uint64_t>(kernel.nnz()) * image.nnz());
    const auto ref = referenceExecute(spec, kernel_plane, image_plane);
    EXPECT_LT(maxAbsDiff(sum, ref), 1e-9);
}

TEST(Chunking, PairEnumerationIsCartesian)
{
    Rng rng(5);
    const CsrMatrix a =
        CsrMatrix::fromDense(bernoulliPlane(10, 10, 0.3, rng));
    const CsrMatrix b =
        CsrMatrix::fromDense(bernoulliPlane(10, 10, 0.3, rng));
    const auto ac = chunkByCapacity(a, 10);
    const auto bc = chunkByCapacity(b, 10);
    EXPECT_EQ(allChunkPairs(ac, bc).size(), ac.size() * bc.size());
}

TEST(ChunkingDeathTest, ZeroCapacityPanics)
{
    const CsrMatrix m(2, 2);
    EXPECT_DEATH(chunkByCapacity(m, 0), "positive");
}

} // namespace
} // namespace antsim
