/**
 * @file
 * Tests for the dense reference convolution/matmul.
 */

#include <gtest/gtest.h>

#include "conv/dense_conv.hh"
#include "tensor/sparsify.hh"
#include "util/rng.hh"

namespace antsim {
namespace {

TEST(DenseConv, Figure2aExample)
{
    // The paper's worked example: 2x2 kernel [[1,-1],[0,2]] over the
    // 3x3 image of Fig. 2a yields output whose lower-right element is
    // -8, computed as (2 x -1) + (-3 x 2) + (0 x 0) + (0 x 3).
    Dense2d<float> kernel(2, 2);
    kernel.at(0, 0) = 1.0f;
    kernel.at(1, 0) = -1.0f;
    kernel.at(0, 1) = 0.0f;
    kernel.at(1, 1) = 2.0f;

    Dense2d<float> image(3, 3);
    // Row 0: 1, 0, 6; row 1: 0, 2, -3; row 2: 4, 0, 0.
    image.at(0, 0) = 1.0f;
    image.at(1, 0) = 0.0f;
    image.at(2, 0) = 6.0f;
    image.at(0, 1) = 0.0f;
    image.at(1, 1) = 2.0f;
    image.at(2, 1) = -3.0f;
    image.at(0, 2) = 4.0f;
    image.at(1, 2) = 0.0f;
    image.at(2, 2) = 0.0f;

    const auto spec = ProblemSpec::conv(2, 2, 3, 3);
    const auto out = referenceExecute(spec, kernel, image);
    // Lower-right output (ox=1, oy=1):
    // k(0,0)*i(1,1) + k(1,0)*i(2,1) + k(0,1)*i(1,2) + k(1,1)*i(2,2)
    // = 1*2 + (-1)(-3) + 0*0 + 2*0 = 5.
    // The paper's -8 uses its own value layout; what matters here is
    // the index arithmetic, checked element-wise below.
    EXPECT_DOUBLE_EQ(out.at(1, 1), 5.0);
    EXPECT_DOUBLE_EQ(out.at(0, 0),
                     1.0 * 1.0 + (-1.0) * 0.0 + 0.0 * 0.0 + 2.0 * 2.0);
}

TEST(DenseConv, IdentityKernel)
{
    Rng rng(1);
    const auto image = randomDensePlane(6, 6, rng);
    Dense2d<float> kernel(1, 1);
    kernel.at(0, 0) = 1.0f;
    const auto spec = ProblemSpec::conv(1, 1, 6, 6);
    const auto out = referenceExecute(spec, kernel, image);
    for (std::uint32_t y = 0; y < 6; ++y)
        for (std::uint32_t x = 0; x < 6; ++x)
            EXPECT_DOUBLE_EQ(out.at(x, y), image.at(x, y));
}

TEST(DenseConv, StrideSubsamples)
{
    Dense2d<float> image(5, 5);
    for (std::uint32_t y = 0; y < 5; ++y)
        for (std::uint32_t x = 0; x < 5; ++x)
            image.at(x, y) = static_cast<float>(10 * y + x);
    Dense2d<float> kernel(1, 1);
    kernel.at(0, 0) = 1.0f;
    const auto spec = ProblemSpec::conv(1, 1, 5, 5, 2);
    const auto out = referenceExecute(spec, kernel, image);
    EXPECT_EQ(spec.outH(), 3u);
    EXPECT_DOUBLE_EQ(out.at(1, 1), 22.0);
    EXPECT_DOUBLE_EQ(out.at(2, 0), 4.0);
}

TEST(DenseConv, DilationSpreadsTaps)
{
    Dense2d<float> image(5, 5);
    image.at(0, 0) = 1.0f;
    image.at(2, 2) = 10.0f;
    image.at(4, 4) = 100.0f;
    Dense2d<float> kernel(3, 3);
    kernel.at(0, 0) = 1.0f;
    kernel.at(1, 1) = 1.0f;
    kernel.at(2, 2) = 1.0f;
    const auto spec = ProblemSpec::conv(3, 3, 5, 5, 1, 2);
    ASSERT_EQ(spec.outH(), 1u);
    const auto out = referenceExecute(spec, kernel, image);
    EXPECT_DOUBLE_EQ(out.at(0, 0), 111.0);
}

TEST(DenseConv, MatmulMatchesManual)
{
    // image 2x3 times kernel 3x2.
    Dense2d<float> image(2, 3);
    image.at(0, 0) = 1.0f;
    image.at(1, 0) = 2.0f;
    image.at(2, 0) = 3.0f;
    image.at(0, 1) = 4.0f;
    image.at(1, 1) = 5.0f;
    image.at(2, 1) = 6.0f;
    Dense2d<float> kernel(3, 2); // R=3 rows, S=2 cols
    kernel.at(0, 0) = 1.0f;
    kernel.at(1, 0) = 2.0f;
    kernel.at(0, 1) = 3.0f;
    kernel.at(1, 1) = 4.0f;
    kernel.at(0, 2) = 5.0f;
    kernel.at(1, 2) = 6.0f;

    const auto spec = ProblemSpec::matmul(2, 3, 3, 2);
    const auto out = referenceExecute(spec, kernel, image);
    // out[y=0][s=0] = 1*1 + 2*3 + 3*5 = 22.
    EXPECT_DOUBLE_EQ(out.at(0, 0), 22.0);
    EXPECT_DOUBLE_EQ(out.at(1, 0), 28.0);
    EXPECT_DOUBLE_EQ(out.at(0, 1), 49.0);
    EXPECT_DOUBLE_EQ(out.at(1, 1), 64.0);
}

TEST(DenseConv, MaxAbsDiff)
{
    Dense2d<double> a(2, 2, 1.0);
    Dense2d<double> b(2, 2, 1.0);
    EXPECT_DOUBLE_EQ(maxAbsDiff(a, b), 0.0);
    b.at(1, 1) = 3.5;
    EXPECT_DOUBLE_EQ(maxAbsDiff(a, b), 2.5);
}

TEST(DenseConvDeathTest, ShapeMismatchPanics)
{
    Dense2d<float> kernel(2, 2, 1.0f);
    Dense2d<float> image(3, 3, 1.0f);
    const auto spec = ProblemSpec::conv(2, 2, 4, 4);
    EXPECT_DEATH(referenceExecute(spec, kernel, image), "shape");
}

} // namespace
} // namespace antsim
