/**
 * @file
 * Tests for the SRAM buffer model (capacity enforcement + access
 * counting with 2 elements per 64-bit access, Sec. 6.3).
 */

#include <gtest/gtest.h>

#include "sim/sram.hh"

namespace antsim {
namespace {

TEST(SramConfig, DefaultGeometry)
{
    const SramConfig cfg;
    EXPECT_EQ(cfg.capacityBytes, 8u * 1024);
    EXPECT_EQ(cfg.capacityElements(), 4096u);
    EXPECT_EQ(cfg.elementsPerAccess(), 4u);
}

TEST(SramConfig, NarrowerAccess)
{
    SramConfig cfg;
    cfg.accessBits = 32;
    EXPECT_EQ(cfg.elementsPerAccess(), 2u);
}

TEST(Sram, FillWithinCapacity)
{
    SramBuffer buf("test", SramConfig{}, Counter::SramValueReads);
    buf.fill(4096);
    EXPECT_EQ(buf.occupancy(), 4096u);
}

TEST(SramDeathTest, OverCapacityIsFatal)
{
    SramBuffer buf("test", SramConfig{}, Counter::SramValueReads);
    EXPECT_EXIT(buf.fill(4097), ::testing::ExitedWithCode(1),
                "over capacity");
}

TEST(Sram, ReadChargesWordAccesses)
{
    SramBuffer buf("test", SramConfig{}, Counter::SramValueReads);
    CounterSet c;
    buf.read(8, c);
    EXPECT_EQ(c.get(Counter::SramValueReads), 2u);
    buf.read(1, c); // partial word still costs one access
    EXPECT_EQ(c.get(Counter::SramValueReads), 3u);
    buf.read(0, c); // free
    EXPECT_EQ(c.get(Counter::SramValueReads), 3u);
}

TEST(Sram, ReadChargesConfiguredCounter)
{
    SramBuffer buf("idx", SramConfig{}, Counter::SramIndexReads);
    CounterSet c;
    buf.read(4, c);
    EXPECT_EQ(c.get(Counter::SramIndexReads), 1u);
    EXPECT_EQ(c.get(Counter::SramValueReads), 0u);
}

TEST(Sram, WriteChargesWriteCounter)
{
    SramBuffer buf("acc", SramConfig{}, Counter::SramValueReads);
    CounterSet c;
    buf.write(5, c);
    EXPECT_EQ(c.get(Counter::SramWrites), 2u);
}

TEST(SramDeathTest, BadGeometryPanics)
{
    SramConfig cfg;
    cfg.elementBits = 24; // does not divide 64
    EXPECT_DEATH(SramBuffer("bad", cfg, Counter::SramValueReads),
                 "multiple");
}

} // namespace
} // namespace antsim
