/**
 * @file
 * Tests for the bit-level FNIR block (Sec. 4.4, Fig. 8): comparator
 * bank + first-n+1 arbiter-select priority encoder.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "ant/fnir.hh"
#include "util/rng.hh"

namespace antsim {
namespace {

TEST(ArbiterSelect, GrantsLowestSetBit)
{
    std::uint32_t pos = 99;
    bool valid = false;
    const std::uint64_t rest = Fnir::arbiterSelect(0b101100, pos, valid);
    EXPECT_TRUE(valid);
    EXPECT_EQ(pos, 2u);
    EXPECT_EQ(rest, 0b101000u);
}

TEST(ArbiterSelect, EmptyRequestInvalid)
{
    std::uint32_t pos = 99;
    bool valid = true;
    const std::uint64_t rest = Fnir::arbiterSelect(0, pos, valid);
    EXPECT_FALSE(valid);
    EXPECT_EQ(rest, 0u);
}

TEST(ArbiterSelect, ChainDrainsAllBits)
{
    std::uint64_t req = 0b1011;
    std::uint32_t pos;
    bool valid;
    std::vector<std::uint32_t> granted;
    while (req) {
        req = Fnir::arbiterSelect(req, pos, valid);
        ASSERT_TRUE(valid);
        granted.push_back(pos);
    }
    EXPECT_EQ(granted, (std::vector<std::uint32_t>{0, 1, 3}));
}

TEST(Fnir, SelectsFirstNInRange)
{
    const Fnir fnir(2, 8);
    CounterSet c;
    const std::vector<std::int64_t> s = {9, 3, 5, 1, 4, 8, 2, 6};
    const FnirResult r = fnir.evaluate(s, 2, 5, c);
    // In range: positions 1(3), 2(5), 4(4), 6(2). First 2 go to the
    // multiplier, the 3rd is the feedback.
    ASSERT_EQ(r.ports.size(), 3u);
    EXPECT_TRUE(r.ports[0].valid);
    EXPECT_EQ(r.ports[0].position, 1u);
    EXPECT_TRUE(r.ports[1].valid);
    EXPECT_EQ(r.ports[1].position, 2u);
    EXPECT_TRUE(r.feedback().valid);
    EXPECT_EQ(r.feedback().position, 4u);
    EXPECT_EQ(r.selectedCount(), 2u);
}

TEST(Fnir, FeedbackInvalidWhenAtMostNValid)
{
    const Fnir fnir(4, 8);
    CounterSet c;
    const std::vector<std::int64_t> s = {9, 3, 5, 1, 9, 8, 9, 6};
    const FnirResult r = fnir.evaluate(s, 3, 6, c); // valid: 3,5,6
    EXPECT_EQ(r.selectedCount(), 3u);
    EXPECT_FALSE(r.feedback().valid);
}

TEST(Fnir, NothingInRange)
{
    const Fnir fnir(4, 8);
    CounterSet c;
    const std::vector<std::int64_t> s = {9, 9, 9, 9};
    const FnirResult r = fnir.evaluate(s, 0, 5, c);
    EXPECT_EQ(r.selectedCount(), 0u);
    EXPECT_FALSE(r.feedback().valid);
}

TEST(Fnir, InclusiveBounds)
{
    const Fnir fnir(2, 4);
    CounterSet c;
    const FnirResult r = fnir.evaluate({2, 5, 1, 6}, 2, 5, c);
    EXPECT_EQ(r.selectedCount(), 2u);
    EXPECT_EQ(r.ports[0].position, 0u); // s=2 == min
    EXPECT_EQ(r.ports[1].position, 1u); // s=5 == max
}

TEST(Fnir, ShortWindowModelsBufferEnd)
{
    const Fnir fnir(4, 16);
    CounterSet c;
    const FnirResult r = fnir.evaluate({3, 4}, 0, 10, c);
    EXPECT_EQ(r.selectedCount(), 2u);
}

TEST(Fnir, ComparatorEnergyChargedPerLane)
{
    const Fnir fnir(4, 16);
    CounterSet c;
    fnir.evaluate({1, 2, 3}, 0, 10, c);
    // All k comparator lanes switch regardless of occupancy.
    EXPECT_EQ(c.get(Counter::IndexCompares), 32u);
}

TEST(FnirDeathTest, WindowWiderThanKPanics)
{
    const Fnir fnir(2, 2);
    CounterSet c;
    EXPECT_DEATH(fnir.evaluate({1, 2, 3}, 0, 10, c), "exceeds");
}

TEST(FnirDeathTest, BadParams)
{
    EXPECT_DEATH(Fnir(0, 8), "at least one");
    EXPECT_DEATH(Fnir(4, 65), "in \\[1, 64\\]");
}

/** Naive reference: first n+1 indices within [min, max]. */
std::vector<std::uint32_t>
naiveFirstWithin(const std::vector<std::int64_t> &s, std::int64_t min,
                 std::int64_t max, std::uint32_t count)
{
    std::vector<std::uint32_t> out;
    for (std::uint32_t i = 0; i < s.size() && out.size() < count; ++i)
        if (s[i] >= min && s[i] <= max)
            out.push_back(i);
    return out;
}

/** Property sweep: the hardware composition equals the naive scan. */
class FnirSweep : public ::testing::TestWithParam<
                      std::tuple<std::uint32_t, std::uint32_t>>
{};

TEST_P(FnirSweep, MatchesNaiveScan)
{
    const auto [n, k] = GetParam();
    const Fnir fnir(n, k);
    Rng rng(n * 100 + k);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<std::int64_t> s(k);
        for (auto &v : s)
            v = rng.range(0, 15);
        const std::int64_t lo = rng.range(0, 10);
        const std::int64_t hi = lo + rng.range(0, 8);

        CounterSet c;
        const FnirResult r = fnir.evaluate(s, lo, hi, c);
        const auto want = naiveFirstWithin(s, lo, hi, n + 1);

        for (std::uint32_t port = 0; port <= n; ++port) {
            if (port < want.size()) {
                EXPECT_TRUE(r.ports[port].valid);
                EXPECT_EQ(r.ports[port].position, want[port]);
            } else {
                EXPECT_FALSE(r.ports[port].valid);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Configs, FnirSweep,
                         ::testing::Combine(::testing::Values(1u, 2u, 4u,
                                                              6u, 8u),
                                            ::testing::Values(4u, 8u, 16u,
                                                              32u)));

} // namespace
} // namespace antsim
