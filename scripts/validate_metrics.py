#!/usr/bin/env python3
"""Validate a Prometheus text exposition written by --metrics-out.

Usage: validate_metrics.py METRICS.prom [--require SUBSTR ...]
       validate_metrics.py --self-test

METRICS.prom is the host-metrics exposition written by any bench
binary's --metrics-out / ANTSIM_METRICS (src/obs/metrics.cc,
docs/OBSERVABILITY.md). The checks are the subset of the Prometheus
text-format contract the simulator relies on, so a scrape-breaking
regression in toPrometheus fails CI before it reaches a dashboard:

  - every non-comment line is `name value` or `name{labels} value`,
    names and label keys match the Prometheus grammar, and values are
    plain integers (the exposition is exact-integer by design);
  - every sample's family has a preceding `# TYPE` line, each family
    declares exactly one TYPE, and the type is counter, gauge, or
    histogram;
  - counter family names end in `_total`;
  - no two samples share a (name, label set) series;
  - histogram families are well-formed: le bounds strictly increase,
    cumulative bucket counts never decrease, the last bucket's le is
    +Inf and its count equals the `_count` sample, and `_sum` and
    `_count` are present exactly once.

--require SUBSTR (repeatable) additionally demands at least one family
whose name contains SUBSTR -- CI uses it to assert the pool, cache,
arena, and stage instrumentation actually recorded.

--self-test runs the validator against built-in good and bad fixtures
and exits non-zero on any misclassification (wired into lint.sh so the
validator itself cannot rot silently).

Only the Python standard library is used (CI installs nothing).
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_KEY_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$")
LABEL_RE = re.compile(r'^(?P<key>[^=]+)="(?P<value>[^"]*)"$')
VALID_TYPES = ("counter", "gauge", "histogram")
HIST_SUFFIXES = ("_bucket", "_sum", "_count")


def fatal(message):
    print("validate_metrics: error: " + message, file=sys.stderr)
    sys.exit(1)


def family_of(name, types):
    """The TYPE family a sample name belongs to.

    Histogram samples use suffixed names (family_bucket / family_sum /
    family_count); everything else samples the family name directly."""
    if name in types:
        return name
    for suffix in HIST_SUFFIXES:
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return None


def parse_labels(text, line_no, errors):
    """`key="value",...` -> dict, or None on malformed syntax."""
    labels = {}
    if text is None or text == "":
        return labels
    for part in text.split(","):
        match = LABEL_RE.match(part)
        if not match or not LABEL_KEY_RE.match(match.group("key")):
            errors.append("line {}: malformed label '{}'".format(
                line_no, part))
            return None
        key = match.group("key")
        if key in labels:
            errors.append("line {}: duplicate label key '{}'".format(
                line_no, key))
            return None
        labels[key] = match.group("value")
    return labels


def check_histogram(family, samples, errors):
    """Validate one histogram family's bucket/sum/count samples."""
    buckets = []
    sums = []
    counts = []
    for name, labels, value, line_no in samples:
        if name == family + "_bucket":
            if "le" not in labels:
                errors.append("line {}: histogram bucket without "
                              "le label".format(line_no))
                continue
            buckets.append((labels["le"], value, line_no))
        elif name == family + "_sum":
            sums.append(value)
        elif name == family + "_count":
            counts.append(value)
    if len(sums) != 1 or len(counts) != 1:
        errors.append("histogram '{}' needs exactly one _sum and one "
                      "_count sample".format(family))
        return
    if not buckets:
        errors.append("histogram '{}' has no buckets".format(family))
        return
    if buckets[-1][0] != "+Inf":
        errors.append("histogram '{}': last bucket le is '{}', not "
                      "+Inf".format(family, buckets[-1][0]))
    previous_le = None
    previous_count = None
    for le, value, line_no in buckets:
        if le != "+Inf":
            try:
                le_num = int(le)
            except ValueError:
                errors.append("line {}: non-integer le '{}'".format(
                    line_no, le))
                continue
            if previous_le is not None and le_num <= previous_le:
                errors.append("line {}: le '{}' not increasing".format(
                    line_no, le))
            previous_le = le_num
        if previous_count is not None and value < previous_count:
            errors.append("line {}: bucket count {} decreased from "
                          "{}".format(line_no, value, previous_count))
        previous_count = value
    if buckets[-1][0] == "+Inf" and buckets[-1][1] != counts[0]:
        errors.append("histogram '{}': +Inf bucket {} != _count "
                      "{}".format(family, buckets[-1][1], counts[0]))


def validate(text):
    """All contract violations in @p text, as a list of messages."""
    errors = []
    types = {}            # family -> declared type
    samples = []          # (name, labels, value, line_no)
    series_seen = set()   # (name, sorted label items)
    for line_no, line in enumerate(text.splitlines(), start=1):
        if line == "":
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                errors.append("line {}: malformed comment '{}'".format(
                    line_no, line))
                continue
            if parts[1] == "TYPE":
                family, kind = parts[2], parts[3] if len(parts) > 3 else ""
                if not NAME_RE.match(family):
                    errors.append("line {}: bad family name "
                                  "'{}'".format(line_no, family))
                    continue
                if kind not in VALID_TYPES:
                    errors.append("line {}: unknown type '{}'".format(
                        line_no, kind))
                    continue
                if family in types:
                    errors.append("line {}: duplicate TYPE for "
                                  "'{}'".format(line_no, family))
                    continue
                if kind == "counter" and not family.endswith("_total"):
                    errors.append("line {}: counter '{}' does not end "
                                  "in _total".format(line_no, family))
                types[family] = kind
            continue
        match = SAMPLE_RE.match(line)
        if not match:
            errors.append("line {}: malformed sample '{}'".format(
                line_no, line))
            continue
        name = match.group("name")
        labels = parse_labels(match.group("labels"), line_no, errors)
        if labels is None:
            continue
        try:
            value = int(match.group("value"))
        except ValueError:
            errors.append("line {}: non-integer value '{}'".format(
                line_no, match.group("value")))
            continue
        family = family_of(name, types)
        if family is None:
            errors.append("line {}: sample '{}' has no preceding "
                          "TYPE".format(line_no, name))
            continue
        if name != family and types[family] != "histogram":
            errors.append("line {}: suffixed sample '{}' on "
                          "non-histogram family '{}'".format(
                              line_no, name, family))
            continue
        series = (name, tuple(sorted(labels.items())))
        if series in series_seen:
            errors.append("line {}: duplicate series {}".format(
                line_no, name))
            continue
        series_seen.add(series)
        samples.append((name, labels, value, line_no))

    for family, kind in types.items():
        if kind == "histogram":
            hist_samples = [s for s in samples
                            if s[0].startswith(family + "_")]
            check_histogram(family, hist_samples, errors)
    return errors


GOOD_FIXTURE = """\
# HELP antsim_runner_units_total simulated units completed
# TYPE antsim_runner_units_total counter
antsim_runner_units_total 12
# HELP antsim_pool_worker_busy_ns_total worker busy nanoseconds
# TYPE antsim_pool_worker_busy_ns_total counter
antsim_pool_worker_busy_ns_total{worker="0"} 100
antsim_pool_worker_busy_ns_total{worker="1"} 90
# HELP antsim_trace_cache_entries planes resident
# TYPE antsim_trace_cache_entries gauge
antsim_trace_cache_entries 3
# HELP antsim_unit_wall_ns wall nanoseconds per unit
# TYPE antsim_unit_wall_ns histogram
antsim_unit_wall_ns_bucket{le="0"} 0
antsim_unit_wall_ns_bucket{le="1"} 2
antsim_unit_wall_ns_bucket{le="3"} 5
antsim_unit_wall_ns_bucket{le="+Inf"} 6
antsim_unit_wall_ns_sum 14
antsim_unit_wall_ns_count 6
"""

BAD_FIXTURES = [
    ("sample without TYPE", "antsim_orphan_total 1\n"),
    ("counter not _total",
     "# HELP antsim_bad a counter\n"
     "# TYPE antsim_bad counter\n"
     "antsim_bad 1\n"),
    ("duplicate series",
     "# HELP antsim_x_total x\n"
     "# TYPE antsim_x_total counter\n"
     "antsim_x_total 1\n"
     "antsim_x_total 2\n"),
    ("non-integer value",
     "# HELP antsim_x_total x\n"
     "# TYPE antsim_x_total counter\n"
     "antsim_x_total nan\n"),
    ("decreasing bucket counts",
     "# HELP antsim_h h\n"
     "# TYPE antsim_h histogram\n"
     "antsim_h_bucket{le=\"1\"} 5\n"
     "antsim_h_bucket{le=\"3\"} 4\n"
     "antsim_h_bucket{le=\"+Inf\"} 4\n"
     "antsim_h_sum 9\n"
     "antsim_h_count 4\n"),
    ("non-increasing le",
     "# HELP antsim_h h\n"
     "# TYPE antsim_h histogram\n"
     "antsim_h_bucket{le=\"3\"} 1\n"
     "antsim_h_bucket{le=\"3\"} 1\n"
     "antsim_h_bucket{le=\"+Inf\"} 1\n"
     "antsim_h_sum 2\n"
     "antsim_h_count 1\n"),
    ("+Inf bucket != count",
     "# HELP antsim_h h\n"
     "# TYPE antsim_h histogram\n"
     "antsim_h_bucket{le=\"1\"} 1\n"
     "antsim_h_bucket{le=\"+Inf\"} 1\n"
     "antsim_h_sum 1\n"
     "antsim_h_count 2\n"),
    ("missing +Inf bucket",
     "# HELP antsim_h h\n"
     "# TYPE antsim_h histogram\n"
     "antsim_h_bucket{le=\"1\"} 1\n"
     "antsim_h_sum 1\n"
     "antsim_h_count 1\n"),
    ("malformed label",
     "# HELP antsim_x_total x\n"
     "# TYPE antsim_x_total counter\n"
     "antsim_x_total{worker=0} 1\n"),
    ("unknown type",
     "# HELP antsim_x x\n"
     "# TYPE antsim_x summary\n"
     "antsim_x 1\n"),
]


def self_test():
    failures = 0
    errors = validate(GOOD_FIXTURE)
    if errors:
        print("validate_metrics: self-test: good fixture rejected:")
        for error in errors:
            print("  " + error)
        failures += 1
    for label, fixture in BAD_FIXTURES:
        if not validate(fixture):
            print("validate_metrics: self-test: bad fixture accepted: "
                  + label)
            failures += 1
    if failures:
        return 1
    print("validate_metrics: self-test passed ({} fixtures)".format(
        1 + len(BAD_FIXTURES)))
    return 0


def main(argv):
    args = list(argv[1:])
    if args == ["--self-test"]:
        return self_test()
    required = []
    while "--require" in args:
        index = args.index("--require")
        if index + 1 >= len(args):
            fatal("--require expects a substring")
        required.append(args[index + 1])
        del args[index:index + 2]
    if len(args) != 1:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    path = args[0]
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as err:
        fatal("cannot read {}: {}".format(path, err))

    errors = validate(text)
    families = set()
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            families.add(line.split(" ")[2])
    for substr in required:
        if not any(substr in family for family in families):
            errors.append("no metric family contains required "
                          "'{}'".format(substr))

    if errors:
        print("validate_metrics: {} FAILS ({} violations):".format(
            path, len(errors)))
        for error in errors[:20]:
            print("  " + error)
        if len(errors) > 20:
            print("  ... and {} more".format(len(errors) - 20))
        return 1
    print("validate_metrics: {} ok ({} families, {} required "
          "substrings)".format(path, len(families), len(required)))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
