#!/usr/bin/env python3
"""Merge per-binary ANTSim JSON reports into one BENCH_antsim.json.

Usage: merge_reports.py OUT.json [--smoke] REPORT.json...

Each input is the --json output of one bench binary (schema_version 1).
The merged document keys every run by its binary name and lifts the
headline numbers -- fig09 geomeans, table5 mean RCP avoidance, and the
abl_threads per-stage wall-clock breakdown -- into a "summary" block so
downstream tooling does not need to know each binary's metric names.

Only the Python standard library is used: the bench containers (and the
CI runner) deliberately have no third-party packages installed.
"""

import json
import sys


def fatal(message):
    print("merge_reports: error: " + message, file=sys.stderr)
    sys.exit(1)


def load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fatal("cannot read {}: {}".format(path, err))
    for key in ("schema_version", "generator", "metadata", "metrics"):
        if key not in report:
            fatal("{} is missing required key '{}'".format(path, key))
    if report["schema_version"] != 1:
        fatal("{} has unsupported schema_version {}".format(
            path, report["schema_version"]))
    return report


def stage_seconds(report):
    """Per-stage wall-clock seconds from a report's profile section."""
    stages = report.get("profile", {}).get("stages", [])
    return {stage["name"]: stage["seconds"] for stage in stages}


def require_metric(runs, binary, metric):
    if binary not in runs:
        fatal("required run '{}' missing from inputs".format(binary))
    metrics = runs[binary]["metrics"]
    if metric not in metrics:
        fatal("run '{}' has no metric '{}'".format(binary, metric))
    return metrics[metric]


def main(argv):
    args = [a for a in argv[1:] if a != "--smoke"]
    smoke = "--smoke" in argv[1:]
    if len(args) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    out_path, inputs = args[0], args[1:]

    runs = {}
    for path in inputs:
        report = load_report(path)
        binary = report["metadata"]["binary"]
        if binary in runs:
            fatal("duplicate run for binary '{}'".format(binary))
        runs[binary] = report

    summary = {
        "speedup_geomean": require_metric(
            runs, "fig09_speedup_energy", "speedup_geomean"),
        "energy_reduction_geomean": require_metric(
            runs, "fig09_speedup_energy", "energy_reduction_geomean"),
        "rcp_avoided_mean": require_metric(
            runs, "table5_rcp_avoided", "rcp_avoided_mean"),
        "stage_seconds": stage_seconds(runs["abl_threads"]),
    }
    if not summary["stage_seconds"]:
        fatal("abl_threads report carries no profile section")

    merged = {
        "schema_version": 1,
        "generator": "antsim",
        "suite": "bench_all",
        "smoke": smoke,
        "summary": summary,
        "runs": runs,
    }
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2)
        handle.write("\n")
    print("merge_reports: wrote {} ({} runs)".format(out_path, len(runs)))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
