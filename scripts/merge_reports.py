#!/usr/bin/env python3
"""Merge per-binary ANTSim JSON reports into one BENCH_antsim.json.

Usage: merge_reports.py OUT.json [--smoke] REPORT.json...

Each input is the --json output of one bench binary (schema_version 1).
The merged document keys every run by its binary name and lifts the
headline numbers -- fig09 geomeans, table5 mean RCP avoidance, and the
abl_threads per-stage wall-clock breakdown -- into a "summary" block so
downstream tooling does not need to know each binary's metric names.

Runs produced by the analytical fast path carry metadata.mode ==
"estimated" (bench --estimate / ANTSIM_ESTIMATE). They merge into the
"runs" section like any other report -- the sweep_dse design-space
bench is estimated by design -- but they can never supply the headline
summary numbers: a run whose metrics feed the summary block must be
mode "simulated", and the merge fails loudly otherwise rather than
publishing estimator output as measured truth.

Only the Python standard library is used: the bench containers (and the
CI runner) deliberately have no third-party packages installed.
"""

import json
import sys


def fatal(message):
    print("merge_reports: error: " + message, file=sys.stderr)
    sys.exit(1)


def load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fatal("cannot read {}: {}".format(path, err))
    for key in ("schema_version", "generator", "metadata", "metrics"):
        if key not in report:
            fatal("{} is missing required key '{}'".format(path, key))
    if report["schema_version"] != 1:
        fatal("{} has unsupported schema_version {}".format(
            path, report["schema_version"]))
    return report


def stage_seconds(report):
    """Per-stage wall-clock seconds from a report's profile section."""
    stages = report.get("profile", {}).get("stages", [])
    return {stage["name"]: stage["seconds"] for stage in stages}


def require_simulated(runs, binary):
    """A run whose numbers feed the headline summary must be simulated:
    estimator output (metadata.mode == "estimated") is a prediction,
    not a measurement, and must never become a headline geomean."""
    if binary not in runs:
        fatal("required run '{}' missing from inputs".format(binary))
    mode = runs[binary]["metadata"].get("mode", "simulated")
    if mode != "simulated":
        fatal("run '{}' has metadata.mode '{}'; headline summary "
              "numbers must come from cycle-level simulation -- rerun "
              "it without --estimate / ANTSIM_ESTIMATE".format(
                  binary, mode))
    return runs[binary]


def require_metric(runs, binary, metric):
    metrics = require_simulated(runs, binary)["metrics"]
    if metric not in metrics:
        fatal("run '{}' has no metric '{}'".format(binary, metric))
    return metrics[metric]


def main(argv):
    args = [a for a in argv[1:] if a != "--smoke"]
    smoke = "--smoke" in argv[1:]
    if len(args) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    out_path, inputs = args[0], args[1:]

    runs = {}
    for path in inputs:
        report = load_report(path)
        binary = report["metadata"]["binary"]
        if binary in runs:
            fatal("duplicate run for binary '{}'".format(binary))
        runs[binary] = report

    summary = {
        "speedup_geomean": require_metric(
            runs, "fig09_speedup_energy", "speedup_geomean"),
        "energy_reduction_geomean": require_metric(
            runs, "fig09_speedup_energy", "energy_reduction_geomean"),
        "rcp_avoided_mean": require_metric(
            runs, "table5_rcp_avoided", "rcp_avoided_mean"),
        "stage_seconds": stage_seconds(require_simulated(runs,
                                                         "abl_threads")),
    }
    if not summary["stage_seconds"]:
        fatal("abl_threads report carries no profile section")
    # sweep_dse's wall-clock advantage of estimation over simulation.
    # Optional (older suites did not run the sweep); check_perf.py
    # gates it against estimate_speedup_min when present.
    if "sweep_dse" in runs:
        speedup = runs["sweep_dse"]["metrics"].get("estimate_speedup")
        if speedup is None:
            fatal("sweep_dse run has no metric 'estimate_speedup'")
        summary["estimate_speedup"] = speedup

    merged = {
        "schema_version": 1,
        "generator": "antsim",
        "suite": "bench_all",
        "smoke": smoke,
        "summary": summary,
        "runs": runs,
    }
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2)
        handle.write("\n")
    print("merge_reports: wrote {} ({} runs)".format(out_path, len(runs)))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
