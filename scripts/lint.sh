#!/usr/bin/env bash
# Static-analysis gate for ANTSim: the project-specific antsim-lint
# pass (determinism/conservation contracts, scripts/antsim_lint.py),
# clang-tidy over every source file in src/ (using the
# compile_commands.json of an existing build tree), plus a handful of
# grep-level convention checks that clang-tidy cannot express. Run
# from anywhere; exits non-zero on any finding.
#
# Usage: scripts/lint.sh [build-dir]
#   build-dir defaults to ./build and must contain compile_commands.json
#   (the top-level CMakeLists.txt always exports one).
#
# antsim-lint writes its findings as SARIF to
# ${build_dir}/antsim_lint.sarif for CI artifact upload.

set -u
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
status=0

# ---------------------------------------------------------- antsim-lint
if command -v python3 >/dev/null 2>&1; then
    echo "lint: running antsim-lint (determinism/conservation contracts)"
    mkdir -p "${build_dir}"
    if ! python3 "${repo_root}/scripts/antsim_lint.py" \
             --compile-commands "${build_dir}/compile_commands.json" \
             --sarif "${build_dir}/antsim_lint.sarif"; then
        status=1
    fi
else
    echo "lint: python3 not found, skipping antsim-lint stage" >&2
fi

# ------------------------------------------------ validator self-tests
# The Prometheus-exposition linter gates CI artifacts; exercise its own
# fixtures here so a regression in the validator cannot hide one in the
# exposition writer.
if command -v python3 >/dev/null 2>&1; then
    echo "lint: running validate_metrics self-test"
    if ! python3 "${repo_root}/scripts/validate_metrics.py" --self-test; then
        status=1
    fi
fi

# ---------------------------------------------------------------- tidy
if command -v clang-tidy >/dev/null 2>&1; then
    if [ ! -f "${build_dir}/compile_commands.json" ]; then
        echo "lint: no compile_commands.json in ${build_dir};" \
             "configure a build first (cmake -B build -S .)" >&2
        exit 1
    fi
    echo "lint: running clang-tidy ($(clang-tidy --version | head -1))"
    mapfile -t sources < <(cd "${repo_root}" && find src -name '*.cc' | sort)
    if ! (cd "${repo_root}" && \
          clang-tidy -p "${build_dir}" --quiet "${sources[@]}"); then
        status=1
    fi
else
    echo "lint: clang-tidy not found, skipping tidy stage" \
         "(convention checks still run)" >&2
fi

# --------------------------------------------- convention grep checks
cd "${repo_root}"

# 1. No raw assert(): the repo uses ANT_ASSERT, which survives NDEBUG
#    and prints file:line. static_assert is fine.
raw_asserts=$(grep -rnE '(^|[^_[:alnum:]])assert\(' src/ \
              --include='*.cc' --include='*.hh' | grep -v 'static_assert' || true)
if [ -n "${raw_asserts}" ]; then
    echo "lint: raw assert() found; use ANT_ASSERT instead:" >&2
    echo "${raw_asserts}" >&2
    status=1
fi

# 2. No std::cout in library code: simulation output goes through the
#    Table/stats layer or the tools' own main(), and diagnostics go to
#    stderr via logging.hh. util/table.cc is the sanctioned writer.
cout_uses=$(grep -rn 'std::cout' src/ --include='*.cc' --include='*.hh' \
            | grep -v '^src/util/table' || true)
if [ -n "${cout_uses}" ]; then
    echo "lint: std::cout in library code; use Table or logging.hh:" >&2
    echo "${cout_uses}" >&2
    status=1
fi

# 3. No printf-family in src/ (same rationale as std::cout).
#    util/logging.cc is the logging backend and writes stderr itself.
printf_uses=$(grep -rnE '(^|[^_[:alnum:]])f?printf\(' src/ \
              --include='*.cc' --include='*.hh' \
              | grep -v '^src/util/logging\.cc' || true)
if [ -n "${printf_uses}" ]; then
    echo "lint: printf in library code; use Table or logging.hh:" >&2
    echo "${printf_uses}" >&2
    status=1
fi

if [ "${status}" -eq 0 ]; then
    echo "lint: clean"
fi
exit "${status}"
