#!/usr/bin/env python3
"""Validate a JSON document against docs/report_schema.json.

Usage: validate_report.py SCHEMA.json DOCUMENT.json

DOCUMENT.json may be either the merged BENCH_antsim.json from
scripts/bench_all.sh (validated against the schema root) or a single
bench --json report (validated against the schema's $defs/report);
the two are told apart by the merged-only "runs" key.

Implements the small, self-contained subset of JSON Schema the report
schema actually uses -- type, properties, required, items,
additionalProperties, enum, minimum, and local $ref -- because the CI
containers have no jsonschema package and must not install one.

On top of the structural check, two semantic laws are enforced:

 1. every "stall_attribution" entry found anywhere in the document:
    each row (per layer and the total) must satisfy
        active + startup + idle_scan + imbalance == cycles
    exactly. The C++ side builds the decomposition saturating so the
    sum holds by construction (src/report/report.cc stallBreakdown); a
    report violating it was produced by a buggy or incompatible writer.
 2. in a merged document, every run whose metrics source the headline
    summary block (fig09_speedup_energy, table5_rcp_avoided,
    abl_threads) must carry metadata.mode == "simulated": estimator
    output (--estimate, metadata.mode "estimated") may be merged as a
    run but must never be laundered into the headline geomeans
    (scripts/merge_reports.py enforces the same law at merge time;
    this check catches documents assembled any other way).
 3. every "host_metrics" histogram (metered runs, --metrics-out) must
    satisfy count == sum(bins): the producer records every sample into
    exactly one bucket (src/obs/metrics.hh histRecord), so a mismatch
    means a corrupted or hand-edited snapshot.

Exits 0 when the document conforms, 1 with every violation listed
otherwise.
"""

import json
import sys

TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    # bool is a subclass of int in Python; keep the two distinct so a
    # schema asking for an integer rejects true/false.
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


class Validator:
    def __init__(self, schema):
        self.root = schema
        self.errors = []

    def resolve(self, ref):
        if not ref.startswith("#/"):
            raise ValueError("only local $refs are supported: " + ref)
        node = self.root
        for part in ref[2:].split("/"):
            node = node[part]
        return node

    def fail(self, path, message):
        self.errors.append("{}: {}".format(path or "$", message))

    def check(self, schema, value, path):
        if "$ref" in schema:
            schema = self.resolve(schema["$ref"])

        expected = schema.get("type")
        if expected is not None and not TYPE_CHECKS[expected](value):
            self.fail(path, "expected {}, got {}".format(
                expected, type(value).__name__))
            return

        if "enum" in schema and value not in schema["enum"]:
            self.fail(path, "value {!r} not in {}".format(
                value, schema["enum"]))
        if "minimum" in schema and isinstance(value, (int, float)) \
                and not isinstance(value, bool) \
                and value < schema["minimum"]:
            self.fail(path, "value {} below minimum {}".format(
                value, schema["minimum"]))

        if isinstance(value, dict):
            for key in schema.get("required", []):
                if key not in value:
                    self.fail(path, "missing required key '{}'".format(key))
            properties = schema.get("properties", {})
            additional = schema.get("additionalProperties")
            for key, item in value.items():
                child = "{}.{}".format(path, key) if path else key
                if key in properties:
                    self.check(properties[key], item, child)
                elif isinstance(additional, dict):
                    self.check(additional, item, child)
                elif additional is False:
                    self.fail(path, "unexpected key '{}'".format(key))

        if isinstance(value, list):
            items = schema.get("items")
            if isinstance(items, dict):
                for index, item in enumerate(value):
                    self.check(items, item, "{}[{}]".format(path, index))


STALL_COMPONENTS = ("active", "startup", "idle_scan", "imbalance")


def check_stall_row(row, path, errors):
    if not isinstance(row, dict):
        return
    try:
        total = sum(row[c] for c in STALL_COMPONENTS)
        cycles = row["cycles"]
    except (KeyError, TypeError):
        return  # structural validation already reported the shape
    if total != cycles:
        errors.append(
            "{}: stall components sum to {} but cycles is {} "
            "(layer '{}')".format(path, total, cycles,
                                  row.get("layer", "?")))


def check_stall_sums(node, path, errors):
    """Recursively enforce the stall-sum law on every
    stall_attribution section in the document (top-level reports and
    reports nested under runs.*)."""
    if isinstance(node, dict):
        for key, value in node.items():
            child = "{}.{}".format(path, key) if path else key
            if key == "stall_attribution" and isinstance(value, list):
                for index, entry in enumerate(value):
                    if not isinstance(entry, dict):
                        continue
                    base = "{}[{}]".format(child, index)
                    for li, row in enumerate(entry.get("layers", [])):
                        check_stall_row(
                            row, "{}.layers[{}]".format(base, li), errors)
                    check_stall_row(
                        entry.get("total"), base + ".total", errors)
            else:
                check_stall_sums(value, child, errors)
    elif isinstance(node, list):
        for index, item in enumerate(node):
            check_stall_sums(item, "{}[{}]".format(path, index), errors)


def check_host_metrics(node, path, errors):
    """Recursively enforce count == sum(bins) on every host_metrics
    histogram (top-level reports and reports nested under runs.*)."""
    if isinstance(node, dict):
        for key, value in node.items():
            child = "{}.{}".format(path, key) if path else key
            if key == "host_metrics" and isinstance(value, dict):
                for index, hist in enumerate(
                        value.get("histograms", [])):
                    if not isinstance(hist, dict):
                        continue
                    bins = hist.get("bins")
                    count = hist.get("count")
                    if not isinstance(bins, list) or \
                            not isinstance(count, int):
                        continue  # structural validation reports shape
                    total = sum(b for b in bins if isinstance(b, int))
                    if total != count:
                        errors.append(
                            "{}.histograms[{}]: bins sum to {} but "
                            "count is {} ('{}')".format(
                                child, index, total, count,
                                hist.get("name", "?")))
            else:
                check_host_metrics(value, child, errors)
    elif isinstance(node, list):
        for index, item in enumerate(node):
            check_host_metrics(item, "{}[{}]".format(path, index), errors)


SUMMARY_SOURCE_RUNS = (
    "fig09_speedup_energy", "table5_rcp_avoided", "abl_threads")


def check_summary_sources(document, errors):
    """Merged documents only: the runs that feed the summary block must
    be cycle-level simulations, never --estimate predictions."""
    runs = document.get("runs")
    if not isinstance(runs, dict):
        return
    for binary in SUMMARY_SOURCE_RUNS:
        run = runs.get(binary)
        if not isinstance(run, dict):
            continue  # structural validation already reported absence
        mode = run.get("metadata", {}).get("mode", "simulated")
        if mode != "simulated":
            errors.append(
                "runs.{}.metadata.mode: '{}' run feeds the headline "
                "summary; only 'simulated' runs may".format(binary, mode))


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    schema_path, doc_path = argv[1], argv[2]
    try:
        with open(schema_path, "r", encoding="utf-8") as handle:
            schema = json.load(handle)
        with open(doc_path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        print("validate_report: error: {}".format(err), file=sys.stderr)
        return 1

    validator = Validator(schema)
    # The schema's root describes the merged BENCH_antsim.json; a
    # single bench --json report matches its $defs/report instead.
    # Distinguish by the merged-only "runs" key.
    if isinstance(document, dict) and "runs" not in document \
            and "$defs" in schema and "report" in schema["$defs"]:
        validator.check(schema["$defs"]["report"], document, "")
    else:
        validator.check(schema, document, "")
    check_stall_sums(document, "", validator.errors)
    check_host_metrics(document, "", validator.errors)
    if isinstance(document, dict):
        check_summary_sources(document, validator.errors)
    if validator.errors:
        print("validate_report: {} FAILS {} ({} violations):".format(
            doc_path, schema_path, len(validator.errors)))
        for error in validator.errors:
            print("  " + error)
        return 1
    print("validate_report: {} conforms to {}".format(doc_path, schema_path))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
