#!/usr/bin/env python3
"""Validate a JSON document against docs/report_schema.json.

Usage: validate_report.py SCHEMA.json DOCUMENT.json

Implements the small, self-contained subset of JSON Schema the report
schema actually uses -- type, properties, required, items,
additionalProperties, enum, minimum, and local $ref -- because the CI
containers have no jsonschema package and must not install one.
Exits 0 when the document conforms, 1 with every violation listed
otherwise.
"""

import json
import sys

TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    # bool is a subclass of int in Python; keep the two distinct so a
    # schema asking for an integer rejects true/false.
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


class Validator:
    def __init__(self, schema):
        self.root = schema
        self.errors = []

    def resolve(self, ref):
        if not ref.startswith("#/"):
            raise ValueError("only local $refs are supported: " + ref)
        node = self.root
        for part in ref[2:].split("/"):
            node = node[part]
        return node

    def fail(self, path, message):
        self.errors.append("{}: {}".format(path or "$", message))

    def check(self, schema, value, path):
        if "$ref" in schema:
            schema = self.resolve(schema["$ref"])

        expected = schema.get("type")
        if expected is not None and not TYPE_CHECKS[expected](value):
            self.fail(path, "expected {}, got {}".format(
                expected, type(value).__name__))
            return

        if "enum" in schema and value not in schema["enum"]:
            self.fail(path, "value {!r} not in {}".format(
                value, schema["enum"]))
        if "minimum" in schema and isinstance(value, (int, float)) \
                and not isinstance(value, bool) \
                and value < schema["minimum"]:
            self.fail(path, "value {} below minimum {}".format(
                value, schema["minimum"]))

        if isinstance(value, dict):
            for key in schema.get("required", []):
                if key not in value:
                    self.fail(path, "missing required key '{}'".format(key))
            properties = schema.get("properties", {})
            additional = schema.get("additionalProperties")
            for key, item in value.items():
                child = "{}.{}".format(path, key) if path else key
                if key in properties:
                    self.check(properties[key], item, child)
                elif isinstance(additional, dict):
                    self.check(additional, item, child)
                elif additional is False:
                    self.fail(path, "unexpected key '{}'".format(key))

        if isinstance(value, list):
            items = schema.get("items")
            if isinstance(items, dict):
                for index, item in enumerate(value):
                    self.check(items, item, "{}[{}]".format(path, index))


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    schema_path, doc_path = argv[1], argv[2]
    try:
        with open(schema_path, "r", encoding="utf-8") as handle:
            schema = json.load(handle)
        with open(doc_path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        print("validate_report: error: {}".format(err), file=sys.stderr)
        return 1

    validator = Validator(schema)
    validator.check(schema, document, "")
    if validator.errors:
        print("validate_report: {} FAILS {} ({} violations):".format(
            doc_path, schema_path, len(validator.errors)))
        for error in validator.errors:
            print("  " + error)
        return 1
    print("validate_report: {} conforms to {}".format(doc_path, schema_path))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
