#!/usr/bin/env python3
"""ANTSim project-specific static analysis: prove the determinism and
conservation contracts at the source level instead of only observing
them dynamically.

The golden/determinism test tiers (bit-identical stats across
--threads, cache on/off, trace on/off) and the conservation audits
(docs/INVARIANTS.md) only catch violations the test inputs happen to
exercise. This pass encodes the contracts those tiers rest on as named
source-level rules and fails on any unsuppressed violation:

  no-unordered-iteration     iterating std::unordered_map/set feeds
                             hash-order nondeterminism into reports,
                             reductions, or traces
  no-wall-clock-in-sim       wall-clock time or platform randomness in
                             simulation code; simulated time must come
                             from sim/clock, randomness from util/rng
  parallel-capture-discipline lambdas passed to parallelFor capturing
                             by reference: shared mutable state breaks
                             the clone-per-worker reduction model
                             unless every write is to a private slot
  no-pointer-keyed-order     std::map/std::set keyed on raw pointers
                             iterate in address order, which varies
                             run to run
  clone-completeness         every PeModel subclass must override
                             clone() and the clone must account for
                             every data member (or delegate to the
                             copy constructor via *this)
  counter-exactness          floating-point values flowing into
                             CounterSet add/set break the exact-sum
                             conservation laws

Modes: with the libclang Python bindings installed the files named by
compile_commands.json are parsed through libclang (type-accurate
tokenization); otherwise a built-in token-level C++ lexer is used.
Both modes run the same rule engines, so findings and suppressions
behave identically; only location fidelity differs.

Suppressions are inline and must carry a justification:

    // antsim-lint: allow(rule-a, rule-b) -- why this is safe

A suppression covers findings on its own line, on any continuation
comment lines directly below it, and on the first code line after the
comment block (put it directly above a multi-line statement).
File-wide:

    // antsim-lint: allow-file(rule) -- why this file is exempt

A suppression without the "-- reason" part is itself a finding
(bad-suppression), and --strict reports suppressions that no longer
match any finding (unused-suppression) so stale exemptions rot away.

Output is one "path:line:col: rule: message" line per finding, plus
optional SARIF 2.1.0 (--sarif FILE) for CI artifact upload. Results
are cached per file content hash under --cache-dir. Exit status: 0
clean, 1 findings, 2 usage or internal error.

Only the Python standard library is required: the bench containers and
the CI runner deliberately have no third-party packages installed.
"""

import argparse
import fnmatch
import hashlib
import json
import os
import re
import sys

LINT_VERSION = "1.0"

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Directories scanned when no explicit paths are given, relative to the
# repo root. tests/ is exempt by default: test code may use std::mt19937
# etc. to *generate* adversarial inputs, and its iteration order never
# reaches a report.
DEFAULT_SCAN_DIRS = ("src", "bench", "examples")

# Never scanned, even when named explicitly by a directory argument.
EXCLUDE_GLOBS = (
    "build*/*",
    "tests/lint_fixtures/*",
)

SOURCE_EXTENSIONS = (".cc", ".hh", ".h", ".cpp", ".hpp")

# ---------------------------------------------------------------- rules

RULES = {
    "no-unordered-iteration": {
        "description":
            "Iteration over std::unordered_map/std::unordered_set: "
            "hash-table order is implementation- and run-dependent, so "
            "any value that flows from such a loop into reports, "
            "reductions, or traces breaks bit-exact determinism. Use an "
            "ordered container, sort the keys first, or suppress with a "
            "proof that the loop result is order-independent.",
        # Whitelisted files may iterate unordered containers freely.
        "whitelist": (),
    },
    "no-wall-clock-in-sim": {
        "description":
            "Wall-clock time or platform randomness in simulation "
            "code. Simulated time must come from sim/clock; all "
            "randomness must come from util/rng (xoshiro256**, fully "
            "specified) so runs are bit-reproducible across platforms.",
        "whitelist": (
            # The stage profiler measures host wall-clock by design and
            # never feeds simulated statistics (docs/MODEL.md Sec. 9).
            "src/report/profiler.hh",
            "src/report/profiler.cc",
            # Logging timestamps diagnostics, never simulation state.
            "src/util/logging.hh",
            "src/util/logging.cc",
            # The sanctioned deterministic generator itself.
            "src/util/rng.hh",
            "src/util/rng.cc",
            # Host-side observability measures wall-clock by design;
            # instrumented code calls their nowNs() helpers and never
            # names a clock itself (docs/OBSERVABILITY.md).
            "src/obs/metrics.hh",
            "src/obs/host_trace.hh",
            "src/obs/host_trace.cc",
        ),
    },
    "parallel-capture-discipline": {
        "description":
            "Lambda passed to parallelFor captures by reference. The "
            "clone-per-worker model requires every worker write to go "
            "to a private replica or a task-indexed slot; an unproven "
            "by-reference capture of shared mutable state is a data "
            "race and an ordering leak. Capture by value/const, or "
            "suppress with a justification naming the per-slot "
            "discipline in use.",
        "whitelist": (),
    },
    "no-pointer-keyed-order": {
        "description":
            "std::map/std::set keyed on a raw pointer orders elements "
            "by address, which varies between runs and allocators; any "
            "iteration leaks nondeterminism. Key on a stable identity "
            "(index, name, id) instead.",
        "whitelist": (),
    },
    "clone-completeness": {
        "description":
            "PeModel subclasses must override clone() and the clone "
            "must account for every data member (mention each member "
            "or delegate to the copy constructor via *this). A clone "
            "that silently drops a member gives worker replicas "
            "different state and breaks parallel determinism "
            "(clone_test only catches members the test inputs reach).",
        "whitelist": (),
    },
    "counter-exactness": {
        "description":
            "Floating-point value flows into a CounterSet add/set. "
            "Counters obey exact integer conservation laws "
            "(docs/INVARIANTS.md); double rounding at the insertion "
            "point makes the laws hold only approximately and can "
            "diverge across compilers. Compute the value in integer "
            "arithmetic, or suppress with a justification for the "
            "fractional model and keep a single rounding site.",
        "whitelist": (),
    },
    # Meta rules about the suppression mechanism itself.
    "bad-suppression": {
        "description":
            "antsim-lint suppression without a '-- reason' "
            "justification; unexplained exemptions are not auditable.",
        "whitelist": (),
    },
    "unused-suppression": {
        "description":
            "antsim-lint suppression that matches no finding "
            "(reported under --strict); stale exemptions hide future "
            "regressions.",
        "whitelist": (),
    },
}

# Identifiers banned outright by no-wall-clock-in-sim wherever they
# appear (type and namespace members included).
WALL_CLOCK_IDENTIFIERS = {
    "system_clock", "steady_clock", "high_resolution_clock",
    "random_device", "mt19937", "mt19937_64", "default_random_engine",
    "minstd_rand", "minstd_rand0", "ranlux24", "ranlux48",
    "knuth_b", "gettimeofday", "clock_gettime", "localtime", "gmtime",
    "strftime", "timespec_get",
}

# Banned only as free/std-qualified calls: a member function named
# clock() or time() is simulated state, not the C library.
WALL_CLOCK_CALLS = {"time", "clock", "rand", "srand", "random", "drand48"}

UNORDERED_CONTAINERS = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset",
}

ORDERED_ASSOC_CONTAINERS = {"map", "set", "multimap", "multiset"}

FLOAT_BEARING_CALLS = {
    "ceil", "floor", "round", "lround", "llround", "nearbyint", "rint",
    "trunc", "fabs", "sqrt", "pow", "exp", "log", "log2",
}

# x86 SIMD intrinsics whose lanes are float or double: the `_ps`/`_pd`
# packed forms and the `_ss`/`_sd` scalar forms. Their results live in
# the float domain even when the C return type is integral (e.g.
# _mm256_movemask_ps returns int), so for counter-exactness they taint
# like a `double` cast. Sanctioned integer-only idioms -- movemask over
# an integer compare that was merely bit-cast to float lanes -- carry a
# justified `// antsim-lint: allow(counter-exactness)` at the site.
FLOAT_INTRINSIC_RE = re.compile(r"^_mm(?:256|512)?_\w*_(?:ps|pd|ss|sd)$")


def is_float_intrinsic(name):
    return bool(FLOAT_INTRINSIC_RE.match(name))


class Finding:
    def __init__(self, rule, path, line, col, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.col = col
        self.message = message

    def key(self):
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self):
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    @staticmethod
    def from_dict(d):
        return Finding(d["rule"], d["path"], d["line"], d["col"],
                       d["message"])


# ------------------------------------------------------------- lexing

class Token:
    __slots__ = ("kind", "text", "line", "col")

    def __init__(self, kind, text, line, col):
        self.kind = kind      # "id", "num", "str", "char", "punct"
        self.text = text
        self.line = line
        self.col = col

    def __repr__(self):
        return f"{self.kind}:{self.text}@{self.line}:{self.col}"


MULTI_PUNCT = (
    "<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=",
    "==", "!=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=",
)

_ID_START = set("abcdefghijklmnopqrstuvwxyz"
                "ABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_ID_CONT = _ID_START | set("0123456789")


def tokenize(text):
    """Lex C++ source into (tokens, comments).

    comments is a list of (line, text) with the comment markers
    stripped; line continuations inside comments are not handled (the
    repo style never uses them).
    """
    tokens = []
    comments = []
    i = 0
    n = len(text)
    line = 1
    line_start = 0

    def col(pos):
        return pos - line_start + 1

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "/" and i + 1 < n:
            if text[i + 1] == "/":
                j = text.find("\n", i)
                if j == -1:
                    j = n
                comments.append((line, text[i + 2:j].strip()))
                i = j
                continue
            if text[i + 1] == "*":
                j = text.find("*/", i + 2)
                if j == -1:
                    j = n
                body = text[i + 2:j]
                for off, part in enumerate(body.split("\n")):
                    comments.append((line + off, part.strip(" *\t")))
                line += body.count("\n")
                i = j + 2 if j < n else n
                if body.count("\n"):
                    last_nl = text.rfind("\n", 0, i)
                    line_start = last_nl + 1
                continue
        # Raw string literal R"delim( ... )delim"
        if c == "R" and i + 1 < n and text[i + 1] == '"':
            m = re.match(r'R"([^()\\ ]{0,16})\(', text[i:])
            if m:
                delim = m.group(1)
                end = text.find(")" + delim + '"', i + m.end())
                if end == -1:
                    end = n
                start_line, start_col = line, col(i)
                body = text[i:end + len(delim) + 2]
                tokens.append(Token("str", body, start_line, start_col))
                line += body.count("\n")
                i += len(body)
                if body.count("\n"):
                    last_nl = text.rfind("\n", 0, i)
                    line_start = last_nl + 1
                continue
        if c == '"' or c == "'":
            quote = c
            start_line, start_col = line, col(i)
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    break
                if text[j] == "\n":
                    break  # unterminated; be forgiving
                j += 1
            tokens.append(Token("str" if quote == '"' else "char",
                                text[i:j + 1], start_line, start_col))
            i = j + 1
            continue
        if c in _ID_START:
            j = i + 1
            while j < n and text[j] in _ID_CONT:
                j += 1
            tokens.append(Token("id", text[i:j], line, col(i)))
            i = j
            continue
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            m = re.match(
                r"(0[xX][0-9a-fA-F'.pP+-]+|[0-9][0-9a-fA-F'.eE+-]*)"
                r"[uUlLfF]*",
                text[i:])
            lit = m.group(0)
            tokens.append(Token("num", lit, line, col(i)))
            i += len(lit)
            continue
        matched = False
        for p in MULTI_PUNCT:
            if text.startswith(p, i):
                tokens.append(Token("punct", p, line, col(i)))
                i += len(p)
                matched = True
                break
        if matched:
            continue
        tokens.append(Token("punct", c, line, col(i)))
        i += 1
    return tokens, comments


def is_float_literal(tok):
    if tok.kind != "num":
        return False
    t = tok.text
    if t.startswith(("0x", "0X")):
        return "p" in t or "P" in t  # hex floats
    return ("." in t or "e" in t.rstrip("fFlL") or "E" in t.rstrip("fFlL")
            or t.rstrip("lL").endswith(("f", "F")))


def match_paren(tokens, open_index):
    """Index of the punct closing tokens[open_index] ('(', '[', '{', '<')."""
    pairs = {"(": ")", "[": "]", "{": "}", "<": ">"}
    open_text = tokens[open_index].text
    close_text = pairs[open_text]
    depth = 0
    i = open_index
    while i < len(tokens):
        t = tokens[i]
        if t.kind == "punct":
            if t.text == open_text:
                depth += 1
            elif t.text == close_text:
                depth -= 1
                if depth == 0:
                    return i
            elif open_text == "<" and t.text in (";", "{"):
                return -1  # not a template argument list after all
            elif open_text == "<" and t.text == ">>":
                depth -= 2
                if depth <= 0:
                    return i
        i += 1
    return -1


# ------------------------------------------------------- suppressions

SUPPRESS_RE = re.compile(
    r"antsim-lint:\s*(allow|allow-file)\(([^)]*)\)\s*(--\s*(.+))?$")


class Suppression:
    def __init__(self, path, line, rules, file_wide, reason, last_line):
        self.path = path
        self.line = line
        self.rules = rules
        self.file_wide = file_wide
        self.reason = reason
        # A suppression covers its own line and the line after its
        # comment block: continuation comment lines between the allow()
        # and the code extend the reach, so multi-line justifications
        # stay legible.
        self.last_line = last_line
        self.used = False

    def covers(self, finding):
        if finding.rule not in self.rules:
            return False
        if self.file_wide:
            return True
        return self.line <= finding.line <= self.last_line + 1


def collect_suppressions(path, comments, findings):
    comment_lines = {line for line, _ in comments}
    sups = []
    for line, text in comments:
        m = SUPPRESS_RE.search(text)
        if not m:
            if "antsim-lint:" in text:
                findings.append(Finding(
                    "bad-suppression", path, line, 1,
                    "malformed antsim-lint comment; expected "
                    "'antsim-lint: allow(rule) -- reason'"))
            continue
        rules = tuple(r.strip() for r in m.group(2).split(",") if r.strip())
        unknown = [r for r in rules if r not in RULES]
        if unknown:
            findings.append(Finding(
                "bad-suppression", path, line, 1,
                "suppression names unknown rule(s): " + ", ".join(unknown)))
            continue
        reason = (m.group(4) or "").strip()
        if not reason:
            findings.append(Finding(
                "bad-suppression", path, line, 1,
                "suppression must carry a '-- reason' justification"))
            continue
        last_line = line
        while last_line + 1 in comment_lines:
            last_line += 1
        sups.append(Suppression(path, line, rules,
                                m.group(1) == "allow-file", reason,
                                last_line))
    return sups


# ------------------------------------------------------- rule engines

INTEGER_TYPE_NAMES = {
    "uint64_t", "int64_t", "uint32_t", "int32_t", "size_t", "ptrdiff_t",
    "int", "long", "unsigned", "short", "auto",
}


def track_declared_vars(tokens, suppressions=()):
    """Per-file variable classification for the token-level engines.

    Returns (unordered_vars, float_vars): names declared with an
    unordered associative container type, and names declared double or
    float (locals, params, members alike) -- plus, folded into
    float_vars, *tainted integers*: integer variables whose initializer
    contains a floating-point literal, variable, cast, or math call, so
    a rounding that hides behind one intermediate before reaching a
    counter is still caught. Purely lexical: a name shadowed with a
    different type in another scope stays classified, which errs toward
    reporting -- suppressions handle the exceptions.

    Besides initializers, compound assignments (`x += expr` and
    friends) whose right side is float-domain also taint: that is the
    accumulation idiom of the SIMD kernels, where an integer tally is
    built from `_mm*_ps` movemasks (see FLOAT_INTRINSIC_RE).

    A counter-exactness suppression placed on (or directly above) an
    integer declaration -- or a tainting compound assignment --
    sanctions that variable: the rounding site carries the
    justification once, and the sanctioned integer may then flow into
    counters freely. This is the "single rounding site" discipline the
    rule text asks for.
    """
    unordered_vars = set()
    float_vars = set()
    for i, tok in enumerate(tokens):
        if tok.kind != "id":
            continue
        if tok.text in UNORDERED_CONTAINERS:
            j = i + 1
            if j < len(tokens) and tokens[j].text == "<":
                close = match_paren(tokens, j)
                if close == -1:
                    continue
                j = close + 1
            # Skip references/pointers and cv-qualifiers.
            while j < len(tokens) and (
                    tokens[j].text in ("&", "*", "const") or
                    tokens[j].kind == "punct" and tokens[j].text in ("&",)):
                j += 1
            if j < len(tokens) and tokens[j].kind == "id":
                unordered_vars.add(tokens[j].text)
        elif tok.text in ("double", "float"):
            prev = tokens[i - 1] if i > 0 else None
            if prev is not None and prev.kind == "punct" and \
                    prev.text == "<":
                # Template argument or cast context, e.g.
                # static_cast<double>( -- handled at use sites. (A
                # 'double' after ',' may be a later template argument,
                # but then no identifier follows and the declarator
                # check below filters it.)
                continue
            j = i + 1
            while j < len(tokens) and tokens[j].text in ("&", "*", "const"):
                j += 1
            if j < len(tokens) and tokens[j].kind == "id":
                nxt = tokens[j + 1] if j + 1 < len(tokens) else None
                if nxt is not None and (nxt.kind != "punct" or
                                        nxt.text not in
                                        (";", "=", ",", ")", "{", "[")):
                    continue
                float_vars.add(tokens[j].text)

    def sanctioned(decl_line):
        for s in suppressions:
            if "counter-exactness" not in s.rules:
                continue
            if s.file_wide or s.line <= decl_line <= s.last_line + 1:
                s.used = True
                return True
        return False

    # Second pass: integer declarations initialized from float-domain
    # expressions become tainted (iterate to a fixpoint so taint flows
    # through chains of intermediates; file-local token counts make the
    # quadratic worst case irrelevant).
    changed = True
    while changed:
        changed = False
        for i, tok in enumerate(tokens):
            if tok.kind != "id":
                continue
            name = None
            rhs_start = -1
            if tok.text in INTEGER_TYPE_NAMES:
                # Declaration with initializer: `uint64_t x = <expr>;`
                j = i + 1
                while j < len(tokens) and \
                        tokens[j].text in ("&", "*", "const"):
                    j += 1
                if j + 1 < len(tokens) and tokens[j].kind == "id" and \
                        tokens[j + 1].text == "=":
                    name = tokens[j].text
                    site_line = tokens[j].line
                    rhs_start = j + 2
            elif i + 1 < len(tokens) and \
                    tokens[i + 1].kind == "punct" and \
                    tokens[i + 1].text in ("+=", "-=", "*=", "/=", "%="):
                # Compound assignment: `x += <expr>;` (the SIMD-kernel
                # accumulation idiom). Skip member/qualified accesses;
                # lexical name matching errs toward reporting anyway.
                prev = tokens[i - 1] if i > 0 else None
                if not (prev is not None and prev.kind == "punct" and
                        prev.text in (".", "->", "::")):
                    name = tok.text
                    site_line = tok.line
                    rhs_start = i + 2
            if name is None or name in float_vars:
                continue
            if sanctioned(site_line):
                continue
            depth = 0
            tainted = False
            for k in range(rhs_start, len(tokens)):
                t = tokens[k]
                if t.kind == "punct":
                    if t.text in ("(", "[", "{"):
                        depth += 1
                    elif t.text in (")", "]", "}"):
                        depth -= 1
                    elif t.text == ";" and depth <= 0:
                        break
                if is_float_literal(t) or (
                        t.kind == "id" and
                        (t.text in ("double", "float") or
                         t.text in FLOAT_BEARING_CALLS or
                         is_float_intrinsic(t.text) or
                         t.text in float_vars)):
                    tainted = True
            if tainted:
                float_vars.add(name)
                changed = True
    return unordered_vars, float_vars


def rule_no_unordered_iteration(path, tokens, ctx, findings):
    unordered_vars = ctx["unordered_vars"]
    n = len(tokens)
    for i, tok in enumerate(tokens):
        if tok.kind == "id" and tok.text == "for" and i + 1 < n and \
                tokens[i + 1].text == "(":
            close = match_paren(tokens, i + 1)
            if close == -1:
                continue
            # Range-for: a single ':' at parenthesis depth 1 ('::' is
            # one token, so any bare ':' here is the range separator).
            depth = 0
            colon = -1
            for j in range(i + 1, close):
                t = tokens[j]
                if t.kind == "punct":
                    if t.text in ("(", "[", "{"):
                        depth += 1
                    elif t.text in (")", "]", "}"):
                        depth -= 1
                    elif t.text == ":" and depth == 1:
                        colon = j
                        break
                depth += 0
            if colon == -1:
                continue
            range_ids = [t.text for t in tokens[colon + 1:close]
                         if t.kind == "id"]
            bad = sorted(set(range_ids) & unordered_vars)
            inline_ctor = set(range_ids) & UNORDERED_CONTAINERS
            if bad or inline_ctor:
                what = ", ".join(bad) if bad else \
                    ", ".join(sorted(inline_ctor))
                findings.append(Finding(
                    "no-unordered-iteration", path, tok.line, tok.col,
                    f"range-for over unordered container ({what}): "
                    "iteration order is nondeterministic"))
        elif tok.kind == "id" and tok.text in ("begin", "cbegin",
                                               "rbegin", "crbegin"):
            if i >= 2 and tokens[i - 1].text in (".", "->") and \
                    tokens[i - 2].kind == "id" and \
                    tokens[i - 2].text in unordered_vars and \
                    i + 1 < n and tokens[i + 1].text == "(":
                findings.append(Finding(
                    "no-unordered-iteration", path, tok.line, tok.col,
                    f"iterator over unordered container "
                    f"'{tokens[i - 2].text}': iteration order is "
                    "nondeterministic"))


def rule_no_wall_clock(path, tokens, ctx, findings):
    n = len(tokens)
    for i, tok in enumerate(tokens):
        if tok.kind != "id":
            continue
        if tok.text in WALL_CLOCK_IDENTIFIERS:
            findings.append(Finding(
                "no-wall-clock-in-sim", path, tok.line, tok.col,
                f"'{tok.text}': wall-clock time / platform randomness "
                "is banned in simulation code (use sim/clock and "
                "util/rng)"))
            continue
        if tok.text in WALL_CLOCK_CALLS and i + 1 < n and \
                tokens[i + 1].text == "(":
            prev = tokens[i - 1] if i > 0 else None
            if prev is not None and prev.kind == "punct" and \
                    prev.text in (".", "->"):
                continue  # member function: simulated state, fine
            if prev is not None and prev.text == "::" and i >= 2 and \
                    tokens[i - 2].kind == "id" and \
                    tokens[i - 2].text != "std":
                continue  # SomeClass::time(...), not the C library
            # A function *definition* with this name (e.g. a simulated
            # "std::uint64_t time() const { ... }" accessor) is not a
            # call: skip when the parameter list is followed by a body
            # or by declaration qualifiers.
            close = match_paren(tokens, i + 1)
            if close != -1 and close + 1 < n and \
                    tokens[close + 1].text in ("{", "const", "override",
                                               "noexcept", "final"):
                continue
            findings.append(Finding(
                "no-wall-clock-in-sim", path, tok.line, tok.col,
                f"call to '{tok.text}()': wall-clock time / platform "
                "randomness is banned in simulation code (use "
                "sim/clock and util/rng)"))


def rule_parallel_capture(path, tokens, ctx, findings):
    n = len(tokens)
    for i, tok in enumerate(tokens):
        if tok.kind != "id" or tok.text != "parallelFor":
            continue
        if i + 1 >= n or tokens[i + 1].text != "(":
            continue
        close = match_paren(tokens, i + 1)
        if close == -1:
            continue
        j = i + 2
        while j < close:
            if tokens[j].text == "[" and tokens[j - 1].text in ("(", ","):
                cap_close = match_paren(tokens, j)
                if cap_close == -1 or cap_close > close:
                    break
                captured = []
                k = j + 1
                while k < cap_close:
                    if tokens[k].text == "&":
                        if k + 1 < cap_close and tokens[k + 1].kind == "id":
                            captured.append("&" + tokens[k + 1].text)
                            k += 2
                            continue
                        captured.append("&")
                    k += 1
                if captured:
                    findings.append(Finding(
                        "parallel-capture-discipline", path,
                        tokens[j].line, tokens[j].col,
                        "lambda passed to parallelFor captures by "
                        "reference (" + ", ".join(captured) + "): "
                        "prove per-slot/private-replica writes or "
                        "capture by value"))
                j = cap_close + 1
                continue
            j += 1


def rule_no_pointer_keyed_order(path, tokens, ctx, findings):
    n = len(tokens)
    for i, tok in enumerate(tokens):
        if tok.kind != "id" or tok.text not in ORDERED_ASSOC_CONTAINERS:
            continue
        if i < 2 or tokens[i - 1].text != "::" or \
                tokens[i - 2].text != "std":
            continue
        if i + 1 >= n or tokens[i + 1].text != "<":
            continue
        close = match_paren(tokens, i + 1)
        if close == -1:
            continue
        # First top-level template argument = the key type.
        depth = 0
        key_tokens = []
        for j in range(i + 2, close):
            t = tokens[j]
            if t.kind == "punct":
                if t.text in ("<", "(", "[", "{"):
                    depth += 1
                elif t.text in (">", ")", "]", "}"):
                    depth -= 1
                elif t.text == "," and depth == 0:
                    break
            key_tokens.append(t)
        if any(t.text == "*" for t in key_tokens):
            key = " ".join(t.text for t in key_tokens)
            findings.append(Finding(
                "no-pointer-keyed-order", path, tok.line, tok.col,
                f"std::{tok.text} keyed on raw pointer ({key}): "
                "iteration follows address order, which is not "
                "reproducible"))


def class_body_members(tokens, body_begin, body_end):
    """Names of non-static data members declared in a class body.

    Walks statements at class-body depth; anything containing a '(' at
    that depth is a function (or function pointer member, which the
    repo does not use), anything starting with static/using/typedef/
    friend is skipped, and the member name is the last identifier
    before the ';' or before an '=' / '{' initializer.
    """
    members = []
    i = body_begin
    stmt = []
    depth = 0
    while i < body_end:
        t = tokens[i]
        if t.kind == "punct" and t.text in ("{", "(", "["):
            close = match_paren(tokens, i)
            if close == -1 or close > body_end:
                return members
            stmt.append(t)  # keep the opener as a function marker
            i = close + 1
            continue
        if t.kind == "punct" and t.text == ";":
            if stmt and not any(x.text == "(" for x in stmt):
                head = stmt[0].text
                if head not in ("static", "using", "typedef", "friend",
                                "public", "private", "protected",
                                "template", "enum", "class", "struct"):
                    name_toks = []
                    for x in stmt:
                        if x.kind == "punct" and x.text in ("=", "{"):
                            break
                        if x.kind == "id":
                            name_toks.append(x.text)
                    if len(name_toks) >= 2:
                        members.append(name_toks[-1])
            stmt = []
            i += 1
            continue
        if t.kind == "punct" and t.text == ":" and stmt and \
                stmt[-1].kind == "id" and \
                stmt[-1].text in ("public", "private", "protected"):
            stmt = []
            i += 1
            continue
        stmt.append(t)
        i += 1
    return members


def rule_clone_completeness(path, tokens, ctx, findings):
    n = len(tokens)
    for i, tok in enumerate(tokens):
        if tok.kind != "id" or tok.text != "class":
            continue
        if i + 1 >= n or tokens[i + 1].kind != "id":
            continue
        class_name = tokens[i + 1].text
        # Find the base clause / body opener for this class head.
        j = i + 2
        bases = []
        saw_colon = False
        while j < n and tokens[j].text not in ("{", ";"):
            if tokens[j].text == ":":
                saw_colon = True
            elif saw_colon and tokens[j].kind == "id" and \
                    tokens[j].text not in ("public", "private",
                                           "protected", "virtual"):
                bases.append(tokens[j].text)
            j += 1
        if j >= n or tokens[j].text == ";":
            continue  # forward declaration
        if "PeModel" not in bases:
            continue
        body_close = match_paren(tokens, j)
        if body_close == -1:
            continue

        members = class_body_members(tokens, j + 1, body_close)

        # Locate clone() inside the class body.
        clone_body = None
        clone_decl_line = None
        k = j + 1
        while k < body_close:
            if tokens[k].kind == "id" and tokens[k].text == "clone" and \
                    k + 1 < n and tokens[k + 1].text == "(":
                clone_decl_line = tokens[k].line
                close = match_paren(tokens, k + 1)
                m = close + 1
                while m < body_close and tokens[m].text not in ("{", ";"):
                    m += 1
                if m < body_close and tokens[m].text == "{":
                    body_end = match_paren(tokens, m)
                    clone_body = tokens[m + 1:body_end]
                break
            k += 1

        if clone_decl_line is None:
            findings.append(Finding(
                "clone-completeness", path, tok.line, tok.col,
                f"PeModel subclass '{class_name}' does not override "
                "clone(); worker replicas would share state through "
                "the base object"))
            continue
        if clone_body is None:
            # Defined out of line: look for ClassName :: clone in this
            # file; cross-file definitions are beyond one-TU analysis.
            for m in range(n - 3):
                if tokens[m].kind == "id" and \
                        tokens[m].text == class_name and \
                        tokens[m + 1].text == "::" and \
                        tokens[m + 2].text == "clone":
                    b = m + 3
                    while b < n and tokens[b].text != "{":
                        b += 1
                    if b < n:
                        body_end = match_paren(tokens, b)
                        clone_body = tokens[b + 1:body_end]
                    break
        if clone_body is None:
            findings.append(Finding(
                "clone-completeness", path, tok.line, tok.col,
                f"'{class_name}::clone()' is declared but not defined "
                "in this file; define it inline (or in the same file) "
                "so completeness is checkable"))
            continue

        body_ids = {t.text for t in clone_body if t.kind == "id"}
        uses_this = any(clone_body[x].text == "this"
                        for x in range(len(clone_body)))
        missing = [m for m in members if m not in body_ids]
        if missing and not uses_this:
            findings.append(Finding(
                "clone-completeness", path, tok.line, tok.col,
                f"'{class_name}::clone()' does not account for data "
                "member(s): " + ", ".join(missing) +
                " (mention each member or delegate to the copy "
                "constructor via *this)"))


def rule_counter_exactness(path, tokens, ctx, findings):
    float_vars = ctx["float_vars"]
    n = len(tokens)
    for i, tok in enumerate(tokens):
        if tok.kind != "id" or tok.text not in ("add", "set"):
            continue
        if i + 1 >= n or tokens[i + 1].text != "(":
            continue
        if i + 3 >= n or tokens[i + 2].text != "Counter" or \
                tokens[i + 3].text != "::":
            continue
        close = match_paren(tokens, i + 1)
        if close == -1:
            continue
        # Second top-level argument (the delta/value expression).
        depth = 0
        arg = []
        seen_comma = False
        for j in range(i + 2, close):
            t = tokens[j]
            if t.kind == "punct":
                if t.text in ("(", "[", "{", "<"):
                    depth += 1
                elif t.text in (")", "]", "}", ">"):
                    depth -= 1
                elif t.text == "," and depth == 0:
                    seen_comma = True
                    continue
            if seen_comma:
                arg.append(t)
        if not arg:
            continue
        reasons = []
        for t in arg:
            if is_float_literal(t):
                reasons.append(f"float literal {t.text}")
            elif t.kind == "id" and t.text in ("double", "float"):
                reasons.append(f"'{t.text}' cast/type")
            elif t.kind == "id" and t.text in FLOAT_BEARING_CALLS:
                reasons.append(f"float-domain call '{t.text}'")
            elif t.kind == "id" and is_float_intrinsic(t.text):
                reasons.append(f"float-lane intrinsic '{t.text}'")
            elif t.kind == "id" and t.text in float_vars:
                reasons.append(f"floating-point variable '{t.text}'")
        if reasons:
            findings.append(Finding(
                "counter-exactness", path, tok.line, tok.col,
                "floating-point value flows into a counter "
                f"({'; '.join(sorted(set(reasons)))}): exact-sum "
                "conservation laws require integer arithmetic"))


TOKEN_RULES = (
    rule_no_unordered_iteration,
    rule_no_wall_clock,
    rule_parallel_capture,
    rule_no_pointer_keyed_order,
    rule_clone_completeness,
    rule_counter_exactness,
)


# ----------------------------------------------------- clang frontend

def load_clang_index():
    """Return a clang.cindex.Index or None if bindings are unavailable."""
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None
    try:
        return cindex.Index.create()
    except Exception:  # library missing or ABI mismatch
        return None


def clang_tokenize(index, path, compile_args):
    """Tokenize through libclang; falls back to None on parse failure.

    The AST is also walked for type-accurate refinements of the
    container rules: variables whose canonical type mentions an
    unordered associative container are added to the tracked set even
    when declared through typedefs the lexical pass cannot see.
    """
    from clang import cindex  # type: ignore
    try:
        tu = index.parse(path, args=compile_args,
                         options=cindex.TranslationUnit.
                         PARSE_DETAILED_PROCESSING_RECORD)
    except Exception:
        return None, None
    kind_map = {
        cindex.TokenKind.IDENTIFIER: "id",
        cindex.TokenKind.KEYWORD: "id",
        cindex.TokenKind.LITERAL: "num",
        cindex.TokenKind.PUNCTUATION: "punct",
    }
    tokens = []
    comments = []
    for t in tu.get_tokens(extent=tu.cursor.extent):
        if t.location.file is None or t.location.file.name != path:
            continue
        if t.kind == cindex.TokenKind.COMMENT:
            text = t.spelling
            text = text[2:] if text.startswith("//") else \
                text[2:-2] if text.startswith("/*") else text
            for off, part in enumerate(text.split("\n")):
                comments.append((t.location.line + off,
                                 part.strip(" *\t")))
            continue
        kind = kind_map.get(t.kind, "punct")
        text = t.spelling
        if kind == "num" and (text.startswith('"') or
                              text.startswith("'")):
            kind = "str" if text.startswith('"') else "char"
        tokens.append(Token(kind, text, t.location.line,
                            t.location.column))
    extra_unordered = set()
    def walk(cursor):
        if cursor.kind in (cindex.CursorKind.VAR_DECL,
                           cindex.CursorKind.FIELD_DECL):
            spelled = cursor.type.get_canonical().spelling
            if "unordered_map" in spelled or "unordered_set" in spelled:
                extra_unordered.add(cursor.spelling)
        for child in cursor.get_children():
            if child.location.file is not None and \
                    child.location.file.name == path:
                walk(child)
    walk(tu.cursor)
    return (tokens, comments), extra_unordered


def load_compile_args(compile_commands_path):
    """Map absolute source path -> compiler args from the database."""
    args_by_file = {}
    try:
        with open(compile_commands_path, encoding="utf-8") as f:
            db = json.load(f)
    except (OSError, ValueError):
        return args_by_file
    for entry in db:
        path = os.path.normpath(
            os.path.join(entry["directory"], entry["file"]))
        raw = entry.get("arguments")
        if raw is None:
            raw = entry.get("command", "").split()
        # Drop compiler, -c, -o and the source file itself.
        args = []
        skip = False
        for a in raw[1:]:
            if skip:
                skip = False
                continue
            if a in ("-c", path, entry["file"]):
                continue
            if a == "-o":
                skip = True
                continue
            args.append(a)
        args_by_file[path] = args
    return args_by_file


# ----------------------------------------------------------- driver

def rel(path):
    return os.path.relpath(path, REPO_ROOT)


def path_excluded(relpath):
    return any(fnmatch.fnmatch(relpath, g) or
               fnmatch.fnmatch(relpath, g.rstrip("/*") + "/*")
               for g in EXCLUDE_GLOBS)


def rule_whitelisted(rule, relpath):
    return any(fnmatch.fnmatch(relpath, g)
               for g in RULES[rule]["whitelist"])


def analyze_file(path, mode_state):
    """Produce raw findings for one file (before suppression)."""
    relpath = rel(path)
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()

    lexed = None
    extra_unordered = set()
    used_clang = False
    if mode_state["index"] is not None:
        compile_args = mode_state["args_by_file"].get(os.path.abspath(path))
        if compile_args is not None:
            result, extra = clang_tokenize(mode_state["index"], path,
                                           compile_args)
            if result is not None:
                lexed = result
                extra_unordered = extra
                used_clang = True
    if lexed is None:
        lexed = tokenize(text)
    tokens, comments = lexed

    findings = []
    suppressions = collect_suppressions(relpath, comments, findings)

    unordered_vars, float_vars = track_declared_vars(tokens, suppressions)
    unordered_vars |= extra_unordered
    ctx = {"unordered_vars": unordered_vars, "float_vars": float_vars}

    for rule_fn in TOKEN_RULES:
        before = len(findings)
        rule_fn(relpath, tokens, ctx, findings)
        # Drop findings for rules whitelisted on this path.
        findings[before:] = [
            f for f in findings[before:]
            if not rule_whitelisted(f.rule, relpath)
        ]

    kept = []
    for f in findings:
        covered = False
        for s in suppressions:
            if s.covers(f):
                s.used = True
                covered = True
        if not covered:
            kept.append(f)
    unused = [s for s in suppressions if not s.used]
    return kept, unused, used_clang


def cache_key(path, mode_tag):
    h = hashlib.sha256()
    h.update(LINT_VERSION.encode())
    h.update(mode_tag.encode())
    with open(path, "rb") as f:
        h.update(f.read())
    return h.hexdigest()


def write_sarif(findings, out_path):
    rules_meta = [
        {
            "id": rid,
            "shortDescription": {"text": rid},
            "fullDescription": {"text": meta["description"]},
            "defaultConfiguration": {"level": "error"},
        }
        for rid, meta in sorted(RULES.items())
    ]
    rule_index = {r["id"]: i for i, r in enumerate(rules_meta)}
    results = [
        {
            "ruleId": f.rule,
            "ruleIndex": rule_index[f.rule],
            "level": "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": f.path.replace(os.sep, "/"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": f.line,
                        "startColumn": max(1, f.col),
                    },
                },
            }],
        }
        for f in findings
    ]
    sarif = {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/"
                   "sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "antsim-lint",
                    "version": LINT_VERSION,
                    "informationUri":
                        "docs/STATIC_ANALYSIS.md",
                    "rules": rules_meta,
                },
            },
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "results": results,
        }],
    }
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(sarif, f, indent=1)
        f.write("\n")


def gather_files(paths):
    files = []
    for p in paths:
        ap = p if os.path.isabs(p) else os.path.join(REPO_ROOT, p)
        if os.path.isdir(ap):
            for root, dirs, names in os.walk(ap):
                dirs.sort()
                dirs[:] = [d for d in dirs
                           if not path_excluded(rel(os.path.join(root, d)))]
                for name in sorted(names):
                    full = os.path.join(root, name)
                    if name.endswith(SOURCE_EXTENSIONS) and \
                            not path_excluded(rel(full)):
                        files.append(full)
        elif os.path.isfile(ap):
            files.append(ap)
        else:
            print(f"antsim-lint: no such path: {p}", file=sys.stderr)
            return None
    return files


def main(argv):
    parser = argparse.ArgumentParser(
        prog="antsim_lint.py",
        description="ANTSim determinism/conservation static analysis")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             f"(default: {' '.join(DEFAULT_SCAN_DIRS)})")
    parser.add_argument("--mode", choices=("auto", "clang", "tokens"),
                        default="auto",
                        help="frontend: libclang bindings, built-in "
                             "token lexer, or auto-detect (default)")
    parser.add_argument("--compile-commands",
                        default=os.path.join(REPO_ROOT, "build",
                                             "compile_commands.json"),
                        help="compilation database for clang mode")
    parser.add_argument("--sarif", metavar="FILE",
                        help="also write findings as SARIF 2.1.0")
    parser.add_argument("--cache-dir",
                        default=os.path.join(REPO_ROOT,
                                             ".antsim-lint-cache"),
                        help="per-file result cache directory")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache")
    parser.add_argument("--strict", action="store_true",
                        help="report unused suppressions as findings")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the summary line")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rid, meta in sorted(RULES.items()):
            print(f"{rid}\n    {meta['description']}\n")
        return 0

    files = gather_files(args.paths or list(DEFAULT_SCAN_DIRS))
    if files is None:
        return 2

    mode_state = {"index": None, "args_by_file": {}}
    if args.mode in ("auto", "clang"):
        index = load_clang_index()
        if index is not None and os.path.isfile(args.compile_commands):
            mode_state["index"] = index
            mode_state["args_by_file"] = \
                load_compile_args(args.compile_commands)
        elif args.mode == "clang":
            print("antsim-lint: clang mode requested but libclang "
                  "bindings or compile_commands.json are unavailable",
                  file=sys.stderr)
            return 2

    mode_tag = "clang" if mode_state["index"] is not None else "tokens"
    use_cache = not args.no_cache
    if use_cache:
        os.makedirs(args.cache_dir, exist_ok=True)

    all_findings = []
    all_unused = []
    for path in files:
        key = cache_key(path, mode_tag) if use_cache else None
        cache_path = os.path.join(args.cache_dir, key + ".json") \
            if key else None
        if cache_path and os.path.isfile(cache_path):
            try:
                with open(cache_path, encoding="utf-8") as f:
                    cached = json.load(f)
                all_findings.extend(
                    Finding.from_dict(d) for d in cached["findings"])
                all_unused.extend(
                    Finding.from_dict(d) for d in cached["unused"])
                continue
            except (OSError, ValueError, KeyError):
                pass
        findings, unused_sups, _ = analyze_file(path, mode_state)
        unused = [
            Finding("unused-suppression", s.path, s.line, 1,
                    "suppression for " + ", ".join(s.rules) +
                    " matches no finding")
            for s in unused_sups
        ]
        if cache_path:
            try:
                with open(cache_path, "w", encoding="utf-8") as f:
                    json.dump({
                        "findings": [x.to_dict() for x in findings],
                        "unused": [x.to_dict() for x in unused],
                    }, f)
            except OSError:
                pass
        all_findings.extend(findings)
        all_unused.extend(unused)

    if args.strict:
        all_findings.extend(all_unused)
    all_findings.sort(key=Finding.key)

    for f in all_findings:
        print(f"{f.path}:{f.line}:{f.col}: {f.rule}: {f.message}")
    if args.sarif:
        write_sarif(all_findings, args.sarif)
    if not args.quiet:
        print(f"antsim-lint: {len(all_findings)} finding(s) in "
              f"{len(files)} file(s) [{mode_tag} mode]",
              file=sys.stderr)
    return 1 if all_findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
