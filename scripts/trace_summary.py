#!/usr/bin/env python3
"""Summarize (and optionally check) an ANTSim trace.

Usage: trace_summary.py TRACE.json [--check] [--top N] [--host]

TRACE.json is the Chrome trace-event document written by
--trace-out / ANTSIM_TRACE (src/obs/trace.cc, docs/OBSERVABILITY.md).
Timestamps are simulated cycles, not wall-clock: the summary is
deterministic for a fixed configuration at every thread count.

--host switches to the host-execution trace written by
--host-trace-out / ANTSIM_HOST_TRACE (src/obs/host_trace.cc):
wall-clock run/stage/unit spans per host thread. The summary prints
the --top spans by *self* time (duration minus the durations of spans
nested inside it on the same thread -- the time the span itself was on
the CPU) and a per-thread utilization table (top-level span time over
the thread's observed makespan). With --check it verifies the host
contract instead of the simulated-time one:
  - every event carries name/ph/pid/ts, ph is one of M/X/i, and
    durations are non-negative integers;
  - span cats are exactly run/stage/unit;
  - spans on one thread nest properly: sorted by (ts, -dur), every
    span either fits entirely inside the enclosing open span or starts
    at/after its end (the floor-both-endpoints microsecond rounding in
    host_trace.cc preserves this by construction);
  - every thread with spans has a thread_name metadata record.

Default output is a per-PE-lane table -- active / startup / idle-scan
cycles, utilization over the lane's makespan, span and task counts --
followed by instant-event totals (accumulator bank conflicts,
trace-cache hits/misses) and the --top longest chunk tasks.

--check additionally validates structure and exits non-zero on any
violation:
  - the document parses and has a traceEvents array;
  - every event carries name/ph/pid/ts, durations are non-negative
    integers, and ph is one of M/X/i;
  - span kinds are exactly startup/active/idle_scan;
  - per-lane "pe" spans are non-overlapping when sorted by start
    (the deterministic lane plan guarantees it);
  - every PE lane referenced by an event has a thread_name metadata
    record.

Only the Python standard library is used (CI installs nothing).
"""

import json
import sys
from collections import defaultdict

SPAN_KINDS = ("startup", "active", "idle_scan")


def fatal(message):
    print("trace_summary: error: " + message, file=sys.stderr)
    sys.exit(1)


HOST_CATS = ("run", "stage", "unit")


def parse_args(argv):
    args = list(argv[1:])
    check = "--check" in args
    if check:
        args.remove("--check")
    host = "--host" in args
    if host:
        args.remove("--host")
    top = 5
    if "--top" in args:
        index = args.index("--top")
        if index + 1 >= len(args):
            fatal("--top expects a value")
        try:
            top = int(args[index + 1])
        except ValueError:
            fatal("--top expects an integer, got '{}'".format(
                args[index + 1]))
        del args[index:index + 2]
    if len(args) != 1:
        print(__doc__.strip(), file=sys.stderr)
        sys.exit(2)
    return args[0], check, top, host


def check_event(event, index, errors):
    for key in ("name", "ph", "pid"):
        if key not in event:
            errors.append("event {}: missing '{}'".format(index, key))
            return False
    ph = event["ph"]
    if ph not in ("M", "X", "i"):
        errors.append("event {}: unknown ph '{}'".format(index, ph))
        return False
    if ph in ("X", "i"):
        ts = event.get("ts")
        if not isinstance(ts, int) or ts < 0:
            errors.append("event {}: bad ts {!r}".format(index, ts))
            return False
    if ph == "X":
        dur = event.get("dur")
        if not isinstance(dur, int) or dur < 0:
            errors.append("event {}: bad dur {!r}".format(index, dur))
            return False
    return True


def host_self_times(spans):
    """Per-span self time on one thread: dur minus nested span durs.

    @p spans is [(ts, dur, name, cat)] for a single tid. Sorted by
    (ts, -dur) a proper nesting visits parents before their children,
    so a stack sweep attributes each span's duration to itself minus
    whatever opens inside it. Returns ([(self, dur, ts, name, cat)],
    nesting_errors)."""
    ordered = sorted(spans, key=lambda s: (s[0], -s[1]))
    stack = []      # indices into results of currently-open spans
    results = []
    errors = []
    for ts, dur, name, cat in ordered:
        end = ts + dur
        while stack and ts >= results[stack[-1]][5]:
            stack.pop()
        if stack and end > results[stack[-1]][5]:
            errors.append(
                "span '{}' [{}, {}) escapes enclosing '{}' ending at "
                "{}".format(name, ts, end, results[stack[-1]][3],
                            results[stack[-1]][5]))
            continue
        if stack:
            parent = results[stack[-1]]
            results[stack[-1]] = (parent[0] - dur,) + parent[1:]
        results.append((dur, dur, ts, name, cat, end))
        stack.append(len(results) - 1)
    return ([(s, d, ts, name, cat)
             for s, d, ts, name, cat, _end in results], errors)


def host_main(path, events, check, top):
    """Summarize / check a host-execution trace (--host mode)."""
    errors = []
    thread_names = {}               # tid -> metadata name
    thread_spans = defaultdict(list)  # tid -> [(ts, dur, name, cat)]
    instants = defaultdict(int)

    for index, event in enumerate(events):
        if not check_event(event, index, errors):
            continue
        ph = event["ph"]
        tid = event.get("tid", 0)
        if ph == "M":
            if event["name"] == "thread_name":
                thread_names[tid] = event.get("args", {}).get("name", "")
            continue
        if ph == "i":
            instants[event["name"]] += 1
            continue
        cat = event.get("cat", "")
        if cat not in HOST_CATS:
            errors.append("event {}: unknown host span cat "
                          "'{}'".format(index, cat))
            continue
        thread_spans[tid].append(
            (event["ts"], event["dur"], event["name"], cat))

    rows = []        # (tid, top_level_us, makespan_us, spans)
    all_spans = []   # (self, dur, ts, tid, name, cat)
    for tid in sorted(thread_spans):
        spans = thread_spans[tid]
        selfs, nest_errors = host_self_times(spans)
        if check:
            for err in nest_errors:
                errors.append("tid {}: {}".format(tid, err))
            if tid not in thread_names:
                errors.append("tid {} has spans but no thread_name "
                              "metadata".format(tid))
        for self_us, dur, ts, name, cat in selfs:
            all_spans.append((self_us, dur, ts, tid, name, cat))
        lo = min(ts for ts, _d, _n, _c in spans)
        hi = max(ts + d for ts, d, _n, _c in spans)
        # Top-level time: spans not nested inside another on this
        # thread (dur == self only for leaves; recompute by sweep).
        ordered = sorted(spans, key=lambda s: (s[0], -s[1]))
        top_level = 0
        cursor = -1
        for ts, dur, _name, _cat in ordered:
            if ts >= cursor:
                top_level += dur
                cursor = ts + dur
        rows.append((tid, top_level, hi - lo, len(spans)))

    if errors:
        print("trace_summary: {} FAILS ({} violations):".format(
            path, len(errors)))
        for error in errors[:20]:
            print("  " + error)
        if len(errors) > 20:
            print("  ... and {} more".format(len(errors) - 20))
        return 1

    total_spans = sum(len(s) for s in thread_spans.values())
    print("trace_summary: {} -- host trace, {} events, {} spans, "
          "{} threads".format(path, len(events), total_spans,
                              len(thread_spans)))
    print("{:<12} {:>14} {:>14} {:>7} {:>8}".format(
        "thread", "busy (us)", "makespan (us)", "util%", "spans"))
    for tid, top_level, makespan, count in rows:
        pct = (100.0 * top_level / makespan) if makespan else 0.0
        print("{:<12} {:>14} {:>14} {:>6.1f}% {:>8}".format(
            thread_names.get(tid, "tid {}".format(tid)), top_level,
            makespan, pct, count))

    if instants:
        print("\ninstants:")
        for name in sorted(instants):
            print("  {:<24} {}".format(name, instants[name]))

    if top > 0 and all_spans:
        all_spans.sort(reverse=True)
        print("\ntop {} spans by self time:".format(
            min(top, len(all_spans))))
        for self_us, dur, ts, tid, name, cat in all_spans[:top]:
            print("  {:>10} us self ({:>10} us total)  {}:{:<28} "
                  "on {}".format(
                      self_us, dur, cat, name,
                      thread_names.get(tid, "tid {}".format(tid))))

    if check:
        print("\ntrace_summary: {} passes all host checks".format(path))
    return 0


def main(argv):
    path, check, top, host = parse_args(argv)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fatal("cannot read {}: {}".format(path, err))

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fatal("{} has no traceEvents array".format(path))

    if host:
        return host_main(path, events, check, top)

    errors = []
    lane_names = {}          # tid -> "PE N" metadata
    lanes = defaultdict(lambda: defaultdict(int))  # tid -> kind -> cycles
    lane_spans = defaultdict(list)   # tid -> [(ts, dur)] for overlap check
    lane_bounds = {}         # tid -> (min_ts, max_end)
    lane_tasks = defaultdict(int)
    instants = defaultdict(int)
    tasks = []               # (dur, ts, tid)
    units = 0

    for index, event in enumerate(events):
        if not check_event(event, index, errors):
            continue
        ph, cat = event["ph"], event.get("cat", "")
        tid = event.get("tid", 0)
        if ph == "M":
            if event["name"] == "thread_name":
                lane_names[tid] = event.get("args", {}).get("name", "")
            continue
        ts = event["ts"]
        if ph == "i":
            instants[event["name"]] += 1
            continue
        dur = event["dur"]
        end = ts + dur
        lo, hi = lane_bounds.get(tid, (ts, end))
        lane_bounds[tid] = (min(lo, ts), max(hi, end))
        if cat == "pe":
            if event["name"] not in SPAN_KINDS:
                errors.append("event {}: unknown span kind '{}'".format(
                    index, event["name"]))
                continue
            lanes[tid][event["name"]] += dur
            lane_spans[tid].append((ts, dur))
        elif cat == "task":
            lane_tasks[tid] += 1
            tasks.append((dur, ts, tid))
        elif cat == "unit":
            units += 1

    if check:
        for tid, spans in sorted(lane_spans.items()):
            spans.sort()
            cursor = -1
            for ts, dur in spans:
                if ts < cursor:
                    errors.append(
                        "lane {}: overlapping pe spans at ts {}".format(
                            tid, ts))
                    break
                cursor = ts + dur
        for tid in sorted(set(lanes) | set(lane_tasks)):
            if tid not in lane_names:
                errors.append(
                    "lane {} has events but no thread_name "
                    "metadata".format(tid))

    if errors:
        print("trace_summary: {} FAILS ({} violations):".format(
            path, len(errors)))
        for error in errors[:20]:
            print("  " + error)
        if len(errors) > 20:
            print("  ... and {} more".format(len(errors) - 20))
        return 1

    print("trace_summary: {} -- {} events, {} units, {} chunk tasks, "
          "{} PE lanes".format(path, len(events), units, len(tasks),
                               len(lanes)))
    header = ("lane", "active", "startup", "idle_scan", "busy%",
              "tasks")
    print("{:<10} {:>12} {:>12} {:>12} {:>7} {:>8}".format(*header))
    for tid in sorted(lanes):
        kinds = lanes[tid]
        lo, hi = lane_bounds[tid]
        span = hi - lo
        busy = kinds["active"] + kinds["startup"]
        pct = (100.0 * busy / span) if span else 0.0
        print("{:<10} {:>12} {:>12} {:>12} {:>6.1f}% {:>8}".format(
            lane_names.get(tid, "tid {}".format(tid)), kinds["active"],
            kinds["startup"], kinds["idle_scan"], pct, lane_tasks[tid]))

    if instants:
        print("\ninstants:")
        for name in sorted(instants):
            print("  {:<24} {}".format(name, instants[name]))
        hits = instants.get("trace_cache_hit", 0)
        misses = instants.get("trace_cache_miss", 0)
        if hits + misses:
            print("  trace-cache hit rate     {:.1f}%".format(
                100.0 * hits / (hits + misses)))

    if top > 0 and tasks:
        tasks.sort(reverse=True)
        print("\ntop {} chunk tasks by cycles:".format(
            min(top, len(tasks))))
        for dur, ts, tid in tasks[:top]:
            print("  {:>10} cycles  at ts {:>10}  on {}".format(
                dur, ts, lane_names.get(tid, "tid {}".format(tid))))

    if check:
        print("\ntrace_summary: {} passes all checks".format(path))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
