#!/usr/bin/env python3
"""Summarize (and optionally check) an ANTSim simulated-time trace.

Usage: trace_summary.py TRACE.json [--check] [--top N]

TRACE.json is the Chrome trace-event document written by
--trace-out / ANTSIM_TRACE (src/obs/trace.cc, docs/OBSERVABILITY.md).
Timestamps are simulated cycles, not wall-clock: the summary is
deterministic for a fixed configuration at every thread count.

Default output is a per-PE-lane table -- active / startup / idle-scan
cycles, utilization over the lane's makespan, span and task counts --
followed by instant-event totals (accumulator bank conflicts,
trace-cache hits/misses) and the --top longest chunk tasks.

--check additionally validates structure and exits non-zero on any
violation:
  - the document parses and has a traceEvents array;
  - every event carries name/ph/pid/ts, durations are non-negative
    integers, and ph is one of M/X/i;
  - span kinds are exactly startup/active/idle_scan;
  - per-lane "pe" spans are non-overlapping when sorted by start
    (the deterministic lane plan guarantees it);
  - every PE lane referenced by an event has a thread_name metadata
    record.

Only the Python standard library is used (CI installs nothing).
"""

import json
import sys
from collections import defaultdict

SPAN_KINDS = ("startup", "active", "idle_scan")


def fatal(message):
    print("trace_summary: error: " + message, file=sys.stderr)
    sys.exit(1)


def parse_args(argv):
    args = list(argv[1:])
    check = "--check" in args
    if check:
        args.remove("--check")
    top = 5
    if "--top" in args:
        index = args.index("--top")
        if index + 1 >= len(args):
            fatal("--top expects a value")
        try:
            top = int(args[index + 1])
        except ValueError:
            fatal("--top expects an integer, got '{}'".format(
                args[index + 1]))
        del args[index:index + 2]
    if len(args) != 1:
        print(__doc__.strip(), file=sys.stderr)
        sys.exit(2)
    return args[0], check, top


def check_event(event, index, errors):
    for key in ("name", "ph", "pid"):
        if key not in event:
            errors.append("event {}: missing '{}'".format(index, key))
            return False
    ph = event["ph"]
    if ph not in ("M", "X", "i"):
        errors.append("event {}: unknown ph '{}'".format(index, ph))
        return False
    if ph in ("X", "i"):
        ts = event.get("ts")
        if not isinstance(ts, int) or ts < 0:
            errors.append("event {}: bad ts {!r}".format(index, ts))
            return False
    if ph == "X":
        dur = event.get("dur")
        if not isinstance(dur, int) or dur < 0:
            errors.append("event {}: bad dur {!r}".format(index, dur))
            return False
    return True


def main(argv):
    path, check, top = parse_args(argv)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fatal("cannot read {}: {}".format(path, err))

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fatal("{} has no traceEvents array".format(path))

    errors = []
    lane_names = {}          # tid -> "PE N" metadata
    lanes = defaultdict(lambda: defaultdict(int))  # tid -> kind -> cycles
    lane_spans = defaultdict(list)   # tid -> [(ts, dur)] for overlap check
    lane_bounds = {}         # tid -> (min_ts, max_end)
    lane_tasks = defaultdict(int)
    instants = defaultdict(int)
    tasks = []               # (dur, ts, tid)
    units = 0

    for index, event in enumerate(events):
        if not check_event(event, index, errors):
            continue
        ph, cat = event["ph"], event.get("cat", "")
        tid = event.get("tid", 0)
        if ph == "M":
            if event["name"] == "thread_name":
                lane_names[tid] = event.get("args", {}).get("name", "")
            continue
        ts = event["ts"]
        if ph == "i":
            instants[event["name"]] += 1
            continue
        dur = event["dur"]
        end = ts + dur
        lo, hi = lane_bounds.get(tid, (ts, end))
        lane_bounds[tid] = (min(lo, ts), max(hi, end))
        if cat == "pe":
            if event["name"] not in SPAN_KINDS:
                errors.append("event {}: unknown span kind '{}'".format(
                    index, event["name"]))
                continue
            lanes[tid][event["name"]] += dur
            lane_spans[tid].append((ts, dur))
        elif cat == "task":
            lane_tasks[tid] += 1
            tasks.append((dur, ts, tid))
        elif cat == "unit":
            units += 1

    if check:
        for tid, spans in sorted(lane_spans.items()):
            spans.sort()
            cursor = -1
            for ts, dur in spans:
                if ts < cursor:
                    errors.append(
                        "lane {}: overlapping pe spans at ts {}".format(
                            tid, ts))
                    break
                cursor = ts + dur
        for tid in sorted(set(lanes) | set(lane_tasks)):
            if tid not in lane_names:
                errors.append(
                    "lane {} has events but no thread_name "
                    "metadata".format(tid))

    if errors:
        print("trace_summary: {} FAILS ({} violations):".format(
            path, len(errors)))
        for error in errors[:20]:
            print("  " + error)
        if len(errors) > 20:
            print("  ... and {} more".format(len(errors) - 20))
        return 1

    print("trace_summary: {} -- {} events, {} units, {} chunk tasks, "
          "{} PE lanes".format(path, len(events), units, len(tasks),
                               len(lanes)))
    header = ("lane", "active", "startup", "idle_scan", "busy%",
              "tasks")
    print("{:<10} {:>12} {:>12} {:>12} {:>7} {:>8}".format(*header))
    for tid in sorted(lanes):
        kinds = lanes[tid]
        lo, hi = lane_bounds[tid]
        span = hi - lo
        busy = kinds["active"] + kinds["startup"]
        pct = (100.0 * busy / span) if span else 0.0
        print("{:<10} {:>12} {:>12} {:>12} {:>6.1f}% {:>8}".format(
            lane_names.get(tid, "tid {}".format(tid)), kinds["active"],
            kinds["startup"], kinds["idle_scan"], pct, lane_tasks[tid]))

    if instants:
        print("\ninstants:")
        for name in sorted(instants):
            print("  {:<24} {}".format(name, instants[name]))
        hits = instants.get("trace_cache_hit", 0)
        misses = instants.get("trace_cache_miss", 0)
        if hits + misses:
            print("  trace-cache hit rate     {:.1f}%".format(
                100.0 * hits / (hits + misses)))

    if top > 0 and tasks:
        tasks.sort(reverse=True)
        print("\ntop {} chunk tasks by cycles:".format(
            min(top, len(tasks))))
        for dur, ts, tid in tasks[:top]:
            print("  {:>10} cycles  at ts {:>10}  on {}".format(
                dur, ts, lane_names.get(tid, "tid {}".format(tid))))

    if check:
        print("\ntrace_summary: {} passes all checks".format(path))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
