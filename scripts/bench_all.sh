#!/usr/bin/env bash
# Run the headline benchmark suite (fig09 speedup/energy, table5 RCP
# avoidance, abl_threads scaling, sweep_dse estimator design sweep),
# collecting each binary's structured --json report, then merge them
# into a single BENCH_antsim.json at the repo root and validate it
# against docs/report_schema.json.
#
# Each successful suite run also appends one JSON line to
# BENCH_history.jsonl at the repo root (timestamp, headline geomeans,
# stage wall clocks, trace-cache roll-up), building a perf trajectory
# across commits; `scripts/check_perf.py --trend` prints the delta of
# the newest entry against the previous one.
#
# Usage: scripts/bench_all.sh [--smoke] [build-dir]
#   --smoke    tiny configuration (2 samples, 2 threads) for CI: same
#              code paths and schema, seconds instead of minutes.
#   build-dir  defaults to ./build; must already contain the bench
#              binaries (cmake -B build -S . && cmake --build build).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
smoke=0
build_dir="${repo_root}/build"
for arg in "$@"; do
    case "${arg}" in
    --smoke) smoke=1 ;;
    --help | -h)
        sed -n '2,12p' "$0"
        exit 0
        ;;
    *) build_dir="${arg}" ;;
    esac
done

bench_dir="${build_dir}/bench"
if [ ! -x "${bench_dir}/fig09_speedup_energy" ]; then
    echo "bench_all: no bench binaries in ${bench_dir};" \
        "build first (cmake -B build -S . && cmake --build build)" >&2
    exit 1
fi

report_dir="${build_dir}/report"
mkdir -p "${report_dir}"

# --smoke trades statistical weight (fewer image samples) for speed;
# the counters stay exact and deterministic either way.
flags=()
merge_flags=()
if [ "${smoke}" -eq 1 ]; then
    flags+=(--samples 2 --threads 2)
    merge_flags+=(--smoke)
    echo "bench_all: smoke configuration (2 samples, 2 threads)"
fi

suite=(fig09_speedup_energy table5_rcp_avoided abl_threads sweep_dse)
for bench in "${suite[@]}"; do
    echo "bench_all: running ${bench}"
    "${bench_dir}/${bench}" "${flags[@]}" \
        --json "${report_dir}/${bench}.json" \
        --csv "${report_dir}/${bench}.csv" \
        >"${report_dir}/${bench}.log"
done

merged="${repo_root}/BENCH_antsim.json"
python3 "${repo_root}/scripts/merge_reports.py" "${merged}" \
    "${merge_flags[@]}" \
    "${report_dir}/fig09_speedup_energy.json" \
    "${report_dir}/table5_rcp_avoided.json" \
    "${report_dir}/abl_threads.json" \
    "${report_dir}/sweep_dse.json"
python3 "${repo_root}/scripts/validate_report.py" \
    "${repo_root}/docs/report_schema.json" "${merged}"

# Append this run's headline numbers to the perf trajectory. The entry
# is one JSON object per line (jsonl): summary geomeans and stage wall
# clocks verbatim, plus a trace-cache roll-up summed over every run's
# profile.census section.
history="${repo_root}/BENCH_history.jsonl"
python3 - "${merged}" "${history}" "${smoke}" <<'PY'
import json
import sys
import time

merged_path, history_path, smoke = sys.argv[1], sys.argv[2], sys.argv[3]
with open(merged_path, "r", encoding="utf-8") as handle:
    merged = json.load(handle)
summary = merged.get("summary", {})

census = {}
for run in merged.get("runs", {}).values():
    for key, value in run.get("profile", {}).get("census", {}).items():
        if key in ("trace_cache_hits", "trace_cache_misses",
                   "trace_planes_generated") and isinstance(value, int):
            census[key] = census.get(key, 0) + value

entry = {
    "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    "smoke": smoke == "1",
}
for key in ("speedup_geomean", "energy_reduction_geomean",
            "rcp_avoided_mean", "estimate_speedup"):
    if key in summary:
        entry[key] = summary[key]
entry["stage_seconds"] = summary.get("stage_seconds", {})
entry["census"] = census
with open(history_path, "a", encoding="utf-8") as handle:
    handle.write(json.dumps(entry, sort_keys=True) + "\n")
print("bench_all: appended history entry to " + history_path)
PY
python3 "${repo_root}/scripts/check_perf.py" --trend "${history}"

echo "bench_all: done. merged report: ${merged}"
