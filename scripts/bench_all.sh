#!/usr/bin/env bash
# Run the headline benchmark suite (fig09 speedup/energy, table5 RCP
# avoidance, abl_threads scaling, sweep_dse estimator design sweep),
# collecting each binary's structured --json report, then merge them
# into a single BENCH_antsim.json at the repo root and validate it
# against docs/report_schema.json.
#
# Usage: scripts/bench_all.sh [--smoke] [build-dir]
#   --smoke    tiny configuration (2 samples, 2 threads) for CI: same
#              code paths and schema, seconds instead of minutes.
#   build-dir  defaults to ./build; must already contain the bench
#              binaries (cmake -B build -S . && cmake --build build).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
smoke=0
build_dir="${repo_root}/build"
for arg in "$@"; do
    case "${arg}" in
    --smoke) smoke=1 ;;
    --help | -h)
        sed -n '2,12p' "$0"
        exit 0
        ;;
    *) build_dir="${arg}" ;;
    esac
done

bench_dir="${build_dir}/bench"
if [ ! -x "${bench_dir}/fig09_speedup_energy" ]; then
    echo "bench_all: no bench binaries in ${bench_dir};" \
        "build first (cmake -B build -S . && cmake --build build)" >&2
    exit 1
fi

report_dir="${build_dir}/report"
mkdir -p "${report_dir}"

# --smoke trades statistical weight (fewer image samples) for speed;
# the counters stay exact and deterministic either way.
flags=()
merge_flags=()
if [ "${smoke}" -eq 1 ]; then
    flags+=(--samples 2 --threads 2)
    merge_flags+=(--smoke)
    echo "bench_all: smoke configuration (2 samples, 2 threads)"
fi

suite=(fig09_speedup_energy table5_rcp_avoided abl_threads sweep_dse)
for bench in "${suite[@]}"; do
    echo "bench_all: running ${bench}"
    "${bench_dir}/${bench}" "${flags[@]}" \
        --json "${report_dir}/${bench}.json" \
        --csv "${report_dir}/${bench}.csv" \
        >"${report_dir}/${bench}.log"
done

merged="${repo_root}/BENCH_antsim.json"
python3 "${repo_root}/scripts/merge_reports.py" "${merged}" \
    "${merge_flags[@]}" \
    "${report_dir}/fig09_speedup_energy.json" \
    "${report_dir}/table5_rcp_avoided.json" \
    "${report_dir}/abl_threads.json" \
    "${report_dir}/sweep_dse.json"
python3 "${repo_root}/scripts/validate_report.py" \
    "${repo_root}/docs/report_schema.json" "${merged}"

echo "bench_all: done. merged report: ${merged}"
