#!/usr/bin/env python3
"""Fail when the bench suite's stage timings regress against a baseline.

Usage: check_perf.py BASELINE.json REPORT.json [--factor F]
       [--min-seconds S] [--micro MICRO.json ...]
       check_perf.py --trend [BENCH_history.jsonl]
       check_perf.py --overhead BASE.json METERED.json
       [--max-overhead-pct P]

BASELINE.json is the checked-in scripts/perf_baseline.json: a document
with a "stage_seconds" object of per-stage seconds recorded from a
known-good smoke run. REPORT.json is a merged BENCH_antsim.json (see
scripts/bench_all.sh); its summary.stage_seconds is compared stage by
stage and the check fails if any stage exceeds factor * baseline
(default 2x -- wide enough for machine-to-machine variance, narrow
enough to catch an accidental revert of the census/trace-cache fast
paths).

When the baseline carries an "estimate_speedup_min" number, the
report's summary.estimate_speedup (the bench/sweep_dse wall-clock
advantage of analytical estimation over exact simulation) must meet
it; see check_estimate_speedup below.

When one or more --micro reports are given (google-benchmark
--benchmark_format=json output from bench/micro_census and
bench/micro_csr), the baseline's "micro_speedups" pairs are also
checked: each pair names a scalar and an AVX2 benchmark and the
minimum scalar/AVX2 CPU-time ratio the vectorized kernel must keep
(docs/MODEL.md Sec. 11). A pair whose AVX2 benchmark is absent from
every report is skipped -- the benches register AVX2 variants only on
AVX2 hardware -- so the gate passes (vacuously) on scalar-only
machines while still catching kernel regressions where it can measure
them.

The comparison is printed as a per-stage delta table (baseline vs
current, % change, limit, verdict); when the GITHUB_STEP_SUMMARY
environment variable points at a writable file (GitHub Actions job
summary), the same table is appended there as markdown.

Stages whose baseline is below --min-seconds (default 0.05) are skipped:
sub-50ms stages are timer noise, not signal.

--trend is informational, never a gate: it reads the BENCH_history.jsonl
appended by scripts/bench_all.sh (one JSON object per suite run:
timestamp, geomeans, stage seconds, trace-cache roll-up) and prints the
delta of the newest entry against the one before it. Machine-to-machine
variance makes an automatic gate on history meaningless; the value is a
human-readable trajectory in the CI log.

--overhead gates the cost of observability itself: BASE.json is a
report from a metrics-off run, METERED.json the same configuration with
--metrics-out/--host-trace-out enabled, and the summed
profile.stages[].seconds of the metered run must stay within
--max-overhead-pct (default 3) of the base run. This is the CI teeth
behind the "one thread-local branch when off, cheap when on" design
contract of src/obs/metrics.hh.

Only the Python standard library is used: the bench containers and the
CI runner deliberately have no third-party packages installed.
"""

import json
import os
import sys


def fatal(message):
    print("check_perf: error: " + message, file=sys.stderr)
    sys.exit(1)


def load_json(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fatal("cannot read {}: {}".format(path, err))


def parse_micro_paths(args):
    """Extract every `--micro PATH` occurrence from args."""
    paths = []
    while "--micro" in args:
        index = args.index("--micro")
        if index + 1 >= len(args):
            fatal("--micro expects a path")
        paths.append(args[index + 1])
        del args[index:index + 2]
    return paths


def load_micro_times(paths):
    """Benchmark name -> CPU time from google-benchmark JSON reports.

    Prefers the `_median` aggregate when --benchmark_repetitions was
    used; otherwise takes the plain iteration entry. Times are kept in
    each benchmark's own time_unit -- only ratios are computed, and a
    scalar/AVX2 pair always comes from the same binary."""
    times = {}
    for path in paths:
        doc = load_json(path)
        entries = doc.get("benchmarks")
        if not isinstance(entries, list):
            fatal("{} has no benchmarks array".format(path))
        for entry in entries:
            name = entry.get("run_name", entry.get("name"))
            cpu = entry.get("cpu_time")
            if not isinstance(name, str) or cpu is None:
                continue
            aggregate = entry.get("aggregate_name", "")
            if aggregate == "median" or (aggregate == "" and
                                         name not in times):
                times[name] = float(cpu)
    return times


def check_micro_speedups(pairs, times):
    """Check each scalar/AVX2 pair; returns the list of failures."""
    failures = []
    print("check_perf: micro-kernel speedups (scalar CPU time / AVX2):")
    for pair_name, spec in sorted(pairs.items()):
        scalar_name = spec.get("scalar")
        avx2_name = spec.get("avx2")
        minimum = spec.get("min_speedup")
        if not scalar_name or not avx2_name or minimum is None:
            fatal("micro_speedups '{}' needs scalar, avx2, and "
                  "min_speedup".format(pair_name))
        if scalar_name not in times:
            fatal("micro reports are missing benchmark '{}'".format(
                scalar_name))
        if avx2_name not in times:
            print("check_perf:   {:<20} skipped (no AVX2 benchmark; "
                  "scalar-only hardware)".format(pair_name))
            continue
        speedup = times[scalar_name] / times[avx2_name]
        verdict = "ok" if speedup >= float(minimum) else "REGRESSED"
        print("check_perf:   {:<20} {:6.2f}x  (min {:.2f}x)  {}".format(
            pair_name, speedup, float(minimum), verdict))
        if verdict == "REGRESSED":
            failures.append(pair_name)
    return failures


def parse_flag(args, name, default):
    if name in args:
        index = args.index(name)
        if index + 1 >= len(args):
            fatal("{} expects a value".format(name))
        try:
            value = float(args[index + 1])
        except ValueError:
            fatal("{} expects a number, got '{}'".format(
                name, args[index + 1]))
        del args[index:index + 2]
        return value
    return default


def build_rows(baseline, current, factor, min_seconds):
    """One row per baseline stage:
    (stage, baseline_s, current_s, delta_pct, limit_s, verdict)."""
    rows = []
    for stage, budget in sorted(baseline.items()):
        if stage not in current:
            fatal("report is missing stage '{}'".format(stage))
        seconds = current[stage]
        delta = ((seconds - budget) / budget * 100.0) if budget > 0 else 0.0
        if budget < min_seconds:
            verdict = "skipped (noise floor)"
        elif seconds <= budget * factor:
            verdict = "ok"
        else:
            verdict = "REGRESSED"
        rows.append((stage, budget, seconds, delta, budget * factor,
                     verdict))
    return rows


def print_table(rows, factor):
    header = ("stage", "baseline (s)", "current (s)", "delta",
              "limit {:.1f}x (s)".format(factor), "verdict")
    widths = [max(len(header[i]), 18 if i == 0 else 14)
              for i in range(len(header))]
    line = "  ".join("{:<{}}".format(header[i], widths[i])
                     for i in range(len(header)))
    print("check_perf: " + line)
    print("check_perf: " + "-" * len(line))
    for stage, budget, seconds, delta, limit, verdict in rows:
        cells = (stage, "{:.4f}".format(budget), "{:.4f}".format(seconds),
                 "{:+.1f}%".format(delta), "{:.4f}".format(limit), verdict)
        print("check_perf: " + "  ".join(
            "{:<{}}".format(cells[i], widths[i])
            for i in range(len(cells))))


def write_job_summary(rows, factor, report_path):
    """Append the delta table as markdown to the GitHub job summary."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    lines = [
        "### Perf check: stage timings vs baseline",
        "",
        "Report: `{}` -- limit = {:.1f}x baseline".format(
            report_path, factor),
        "",
        "| Stage | Baseline (s) | Current (s) | Delta | Verdict |",
        "| --- | ---: | ---: | ---: | --- |",
    ]
    for stage, budget, seconds, delta, _limit, verdict in rows:
        mark = ":x: " if verdict == "REGRESSED" else ""
        lines.append("| {} | {:.4f} | {:.4f} | {:+.1f}% | {}{} |".format(
            stage, budget, seconds, delta, mark, verdict))
    lines.append("")
    try:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
    except OSError as err:
        # The summary is a convenience; never fail the check over it.
        print("check_perf: warning: cannot write job summary: {}".format(
            err), file=sys.stderr)


def check_estimate_speedup(baseline, report):
    """Gate the estimator's wall-clock advantage over simulation.

    The baseline's "estimate_speedup_min" is the minimum
    summary.estimate_speedup (mean seconds per exactly-simulated design
    point over mean seconds per estimated point, measured by
    bench/sweep_dse) a run must keep. The whole point of the --estimate
    fast path is seconds-scale design sweeps; a change that makes the
    estimator only, say, 10x faster than simulation has silently
    re-introduced per-nonzero work and must fail loudly."""
    minimum = baseline.get("estimate_speedup_min")
    if minimum is None:
        return
    speedup = report.get("summary", {}).get("estimate_speedup")
    if speedup is None:
        fatal("baseline sets estimate_speedup_min but the report's "
              "summary has no estimate_speedup (sweep_dse missing "
              "from the suite?)")
    verdict = "ok" if speedup >= float(minimum) else "REGRESSED"
    print("check_perf: estimate_speedup {:8.0f}x  (min {:.0f}x)  {}".format(
        speedup, float(minimum), verdict))
    if verdict == "REGRESSED":
        fatal("estimator wall-clock advantage {:.0f}x fell below the "
              "{:.0f}x floor".format(speedup, float(minimum)))


def run_trend(args):
    """Print the newest history entry's delta vs the previous one."""
    path = args[0] if args else "BENCH_history.jsonl"
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
    except OSError as err:
        fatal("cannot read {}: {}".format(path, err))
    entries = []
    for line_no, line in enumerate(lines, start=1):
        try:
            entries.append(json.loads(line))
        except json.JSONDecodeError as err:
            fatal("{} line {}: {}".format(path, line_no, err))
    if not entries:
        fatal("{} has no entries".format(path))
    current = entries[-1]
    print("check_perf: trend from {} ({} entries)".format(
        path, len(entries)))
    print("check_perf: latest entry: {}".format(
        current.get("timestamp", "<no timestamp>")))
    if len(entries) == 1:
        print("check_perf: no previous entry to compare against")
        return 0
    previous = entries[-2]

    def delta_line(label, cur, prev, unit=""):
        if not isinstance(cur, (int, float)):
            return
        if isinstance(prev, (int, float)) and prev != 0:
            pct = (cur - prev) / prev * 100.0
            print("check_perf:   {:<28} {:10.4f}{}  ({:+.1f}% vs "
                  "{:.4f})".format(label, cur, unit, pct, prev))
        else:
            print("check_perf:   {:<28} {:10.4f}{}  (no previous "
                  "value)".format(label, cur, unit))

    for key in ("speedup_geomean", "energy_reduction_geomean",
                "rcp_avoided_mean", "estimate_speedup"):
        delta_line(key, current.get(key), previous.get(key), "x")
    stages_cur = current.get("stage_seconds", {})
    stages_prev = previous.get("stage_seconds", {})
    if isinstance(stages_cur, dict):
        for stage in sorted(stages_cur):
            delta_line("stage " + stage, stages_cur.get(stage),
                       stages_prev.get(stage) if
                       isinstance(stages_prev, dict) else None, "s")
    census_cur = current.get("census", {})
    census_prev = previous.get("census", {})
    if isinstance(census_cur, dict):
        for key in sorted(census_cur):
            delta_line("census " + key, census_cur.get(key),
                       census_prev.get(key) if
                       isinstance(census_prev, dict) else None)
    # Informational only: history entries come from different machines
    # and commits, so there is no threshold worth failing on.
    return 0


def profile_seconds(report, path):
    """Sum of profile.stages[].seconds in a single-run report."""
    stages = report.get("profile", {}).get("stages")
    if not isinstance(stages, list) or not stages:
        fatal("{} has no profile.stages (report written without the "
              "profile section?)".format(path))
    total = 0.0
    for stage in stages:
        seconds = stage.get("seconds")
        if not isinstance(seconds, (int, float)):
            fatal("{}: stage entry without numeric seconds".format(path))
        total += seconds
    return total


def run_overhead(args):
    """Gate metered-run overhead vs a metrics-off base run."""
    max_pct = parse_flag(args, "--max-overhead-pct", 3.0)
    if len(args) != 2:
        fatal("--overhead expects BASE.json METERED.json")
    base_path, metered_path = args
    base = profile_seconds(load_json(base_path), base_path)
    metered = profile_seconds(load_json(metered_path), metered_path)
    if base <= 0:
        fatal("{}: non-positive profiled seconds".format(base_path))
    pct = (metered - base) / base * 100.0
    verdict = "ok" if pct <= max_pct else "REGRESSED"
    print("check_perf: observability overhead: base {:.4f}s, metered "
          "{:.4f}s, delta {:+.1f}% (max {:+.1f}%)  {}".format(
              base, metered, pct, max_pct, verdict))
    if verdict == "REGRESSED":
        fatal("metered run exceeded the {:.1f}% observability overhead "
              "budget".format(max_pct))
    return 0


def main(argv):
    args = list(argv[1:])
    if args and args[0] == "--trend":
        return run_trend(args[1:])
    if args and args[0] == "--overhead":
        return run_overhead(args[1:])
    factor = parse_flag(args, "--factor", 2.0)
    min_seconds = parse_flag(args, "--min-seconds", 0.05)
    micro_paths = parse_micro_paths(args)
    if len(args) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    baseline_path, report_path = args

    baseline = load_json(baseline_path).get("stage_seconds")
    if not isinstance(baseline, dict) or not baseline:
        fatal("{} has no stage_seconds object".format(baseline_path))
    report = load_json(report_path)
    current = report.get("summary", {}).get("stage_seconds")
    if not isinstance(current, dict) or not current:
        fatal("{} has no summary.stage_seconds".format(report_path))

    rows = build_rows(baseline, current, factor, min_seconds)
    print_table(rows, factor)
    write_job_summary(rows, factor, report_path)

    failures = [row[0] for row in rows if row[5] == "REGRESSED"]
    if failures:
        fatal("stage(s) regressed beyond {:.1f}x baseline: {}".format(
            factor, ", ".join(failures)))

    check_estimate_speedup(load_json(baseline_path), report)

    if micro_paths:
        pairs = load_json(baseline_path).get("micro_speedups")
        if not isinstance(pairs, dict) or not pairs:
            fatal("{} has no micro_speedups object but --micro was "
                  "given".format(baseline_path))
        micro_failures = check_micro_speedups(
            pairs, load_micro_times(micro_paths))
        if micro_failures:
            fatal("micro-kernel pair(s) below minimum speedup: {}".format(
                ", ".join(micro_failures)))

    print("check_perf: all stages within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
