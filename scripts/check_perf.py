#!/usr/bin/env python3
"""Fail when the bench suite's stage timings regress against a baseline.

Usage: check_perf.py BASELINE.json REPORT.json [--factor F] [--min-seconds S]

BASELINE.json is the checked-in scripts/perf_baseline.json: a document
with a "stage_seconds" object of per-stage seconds recorded from a
known-good smoke run. REPORT.json is a merged BENCH_antsim.json (see
scripts/bench_all.sh); its summary.stage_seconds is compared stage by
stage and the check fails if any stage exceeds factor * baseline
(default 2x -- wide enough for machine-to-machine variance, narrow
enough to catch an accidental revert of the census/trace-cache fast
paths).

Stages whose baseline is below --min-seconds (default 0.05) are skipped:
sub-50ms stages are timer noise, not signal.

Only the Python standard library is used: the bench containers and the
CI runner deliberately have no third-party packages installed.
"""

import json
import sys


def fatal(message):
    print("check_perf: error: " + message, file=sys.stderr)
    sys.exit(1)


def load_json(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fatal("cannot read {}: {}".format(path, err))


def parse_flag(args, name, default):
    if name in args:
        index = args.index(name)
        if index + 1 >= len(args):
            fatal("{} expects a value".format(name))
        try:
            value = float(args[index + 1])
        except ValueError:
            fatal("{} expects a number, got '{}'".format(
                name, args[index + 1]))
        del args[index:index + 2]
        return value
    return default


def main(argv):
    args = list(argv[1:])
    factor = parse_flag(args, "--factor", 2.0)
    min_seconds = parse_flag(args, "--min-seconds", 0.05)
    if len(args) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    baseline_path, report_path = args

    baseline = load_json(baseline_path).get("stage_seconds")
    if not isinstance(baseline, dict) or not baseline:
        fatal("{} has no stage_seconds object".format(baseline_path))
    report = load_json(report_path)
    current = report.get("summary", {}).get("stage_seconds")
    if not isinstance(current, dict) or not current:
        fatal("{} has no summary.stage_seconds".format(report_path))

    failures = []
    for stage, budget in sorted(baseline.items()):
        if stage not in current:
            fatal("report is missing stage '{}'".format(stage))
        seconds = current[stage]
        if budget < min_seconds:
            print("check_perf: {:<18} {:8.4f}s (baseline {:.4f}s "
                  "below noise floor, skipped)".format(
                      stage, seconds, budget))
            continue
        limit = budget * factor
        status = "ok" if seconds <= limit else "REGRESSED"
        print("check_perf: {:<18} {:8.4f}s (limit {:.4f}s = {:.1f}x "
              "baseline {:.4f}s) {}".format(
                  stage, seconds, limit, factor, budget, status))
        if seconds > limit:
            failures.append(stage)

    if failures:
        fatal("stage(s) regressed beyond {:.1f}x baseline: {}".format(
            factor, ", ".join(failures)))
    print("check_perf: all stages within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
