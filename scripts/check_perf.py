#!/usr/bin/env python3
"""Fail when the bench suite's stage timings regress against a baseline.

Usage: check_perf.py BASELINE.json REPORT.json [--factor F] [--min-seconds S]

BASELINE.json is the checked-in scripts/perf_baseline.json: a document
with a "stage_seconds" object of per-stage seconds recorded from a
known-good smoke run. REPORT.json is a merged BENCH_antsim.json (see
scripts/bench_all.sh); its summary.stage_seconds is compared stage by
stage and the check fails if any stage exceeds factor * baseline
(default 2x -- wide enough for machine-to-machine variance, narrow
enough to catch an accidental revert of the census/trace-cache fast
paths).

The comparison is printed as a per-stage delta table (baseline vs
current, % change, limit, verdict); when the GITHUB_STEP_SUMMARY
environment variable points at a writable file (GitHub Actions job
summary), the same table is appended there as markdown.

Stages whose baseline is below --min-seconds (default 0.05) are skipped:
sub-50ms stages are timer noise, not signal.

Only the Python standard library is used: the bench containers and the
CI runner deliberately have no third-party packages installed.
"""

import json
import os
import sys


def fatal(message):
    print("check_perf: error: " + message, file=sys.stderr)
    sys.exit(1)


def load_json(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fatal("cannot read {}: {}".format(path, err))


def parse_flag(args, name, default):
    if name in args:
        index = args.index(name)
        if index + 1 >= len(args):
            fatal("{} expects a value".format(name))
        try:
            value = float(args[index + 1])
        except ValueError:
            fatal("{} expects a number, got '{}'".format(
                name, args[index + 1]))
        del args[index:index + 2]
        return value
    return default


def build_rows(baseline, current, factor, min_seconds):
    """One row per baseline stage:
    (stage, baseline_s, current_s, delta_pct, limit_s, verdict)."""
    rows = []
    for stage, budget in sorted(baseline.items()):
        if stage not in current:
            fatal("report is missing stage '{}'".format(stage))
        seconds = current[stage]
        delta = ((seconds - budget) / budget * 100.0) if budget > 0 else 0.0
        if budget < min_seconds:
            verdict = "skipped (noise floor)"
        elif seconds <= budget * factor:
            verdict = "ok"
        else:
            verdict = "REGRESSED"
        rows.append((stage, budget, seconds, delta, budget * factor,
                     verdict))
    return rows


def print_table(rows, factor):
    header = ("stage", "baseline (s)", "current (s)", "delta",
              "limit {:.1f}x (s)".format(factor), "verdict")
    widths = [max(len(header[i]), 18 if i == 0 else 14)
              for i in range(len(header))]
    line = "  ".join("{:<{}}".format(header[i], widths[i])
                     for i in range(len(header)))
    print("check_perf: " + line)
    print("check_perf: " + "-" * len(line))
    for stage, budget, seconds, delta, limit, verdict in rows:
        cells = (stage, "{:.4f}".format(budget), "{:.4f}".format(seconds),
                 "{:+.1f}%".format(delta), "{:.4f}".format(limit), verdict)
        print("check_perf: " + "  ".join(
            "{:<{}}".format(cells[i], widths[i])
            for i in range(len(cells))))


def write_job_summary(rows, factor, report_path):
    """Append the delta table as markdown to the GitHub job summary."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    lines = [
        "### Perf check: stage timings vs baseline",
        "",
        "Report: `{}` -- limit = {:.1f}x baseline".format(
            report_path, factor),
        "",
        "| Stage | Baseline (s) | Current (s) | Delta | Verdict |",
        "| --- | ---: | ---: | ---: | --- |",
    ]
    for stage, budget, seconds, delta, _limit, verdict in rows:
        mark = ":x: " if verdict == "REGRESSED" else ""
        lines.append("| {} | {:.4f} | {:.4f} | {:+.1f}% | {}{} |".format(
            stage, budget, seconds, delta, mark, verdict))
    lines.append("")
    try:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
    except OSError as err:
        # The summary is a convenience; never fail the check over it.
        print("check_perf: warning: cannot write job summary: {}".format(
            err), file=sys.stderr)


def main(argv):
    args = list(argv[1:])
    factor = parse_flag(args, "--factor", 2.0)
    min_seconds = parse_flag(args, "--min-seconds", 0.05)
    if len(args) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    baseline_path, report_path = args

    baseline = load_json(baseline_path).get("stage_seconds")
    if not isinstance(baseline, dict) or not baseline:
        fatal("{} has no stage_seconds object".format(baseline_path))
    report = load_json(report_path)
    current = report.get("summary", {}).get("stage_seconds")
    if not isinstance(current, dict) or not current:
        fatal("{} has no summary.stage_seconds".format(report_path))

    rows = build_rows(baseline, current, factor, min_seconds)
    print_table(rows, factor)
    write_job_summary(rows, factor, report_path)

    failures = [row[0] for row in rows if row[5] == "REGRESSED"]
    if failures:
        fatal("stage(s) regressed beyond {:.1f}x baseline: {}".format(
            factor, ", ".join(failures)))
    print("check_perf: all stages within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
