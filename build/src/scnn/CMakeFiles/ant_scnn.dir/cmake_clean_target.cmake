file(REMOVE_RECURSE
  "libant_scnn.a"
)
