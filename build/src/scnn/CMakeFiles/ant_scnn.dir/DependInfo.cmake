
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scnn/scnn_pe.cc" "src/scnn/CMakeFiles/ant_scnn.dir/scnn_pe.cc.o" "gcc" "src/scnn/CMakeFiles/ant_scnn.dir/scnn_pe.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ant_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/conv/CMakeFiles/ant_conv.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ant_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ant_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
