file(REMOVE_RECURSE
  "CMakeFiles/ant_scnn.dir/scnn_pe.cc.o"
  "CMakeFiles/ant_scnn.dir/scnn_pe.cc.o.d"
  "libant_scnn.a"
  "libant_scnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ant_scnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
