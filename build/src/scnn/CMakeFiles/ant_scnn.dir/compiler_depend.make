# Empty compiler generated dependencies file for ant_scnn.
# This may be replaced when dependencies are built.
