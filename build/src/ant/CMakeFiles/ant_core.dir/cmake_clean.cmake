file(REMOVE_RECURSE
  "CMakeFiles/ant_core.dir/ant_pe.cc.o"
  "CMakeFiles/ant_core.dir/ant_pe.cc.o.d"
  "CMakeFiles/ant_core.dir/ant_pipeline.cc.o"
  "CMakeFiles/ant_core.dir/ant_pipeline.cc.o.d"
  "CMakeFiles/ant_core.dir/area_model.cc.o"
  "CMakeFiles/ant_core.dir/area_model.cc.o.d"
  "CMakeFiles/ant_core.dir/fnir.cc.o"
  "CMakeFiles/ant_core.dir/fnir.cc.o.d"
  "libant_core.a"
  "libant_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ant_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
