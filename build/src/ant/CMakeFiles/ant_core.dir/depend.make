# Empty dependencies file for ant_core.
# This may be replaced when dependencies are built.
