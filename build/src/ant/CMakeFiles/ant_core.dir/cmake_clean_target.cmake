file(REMOVE_RECURSE
  "libant_core.a"
)
