
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ant/ant_pe.cc" "src/ant/CMakeFiles/ant_core.dir/ant_pe.cc.o" "gcc" "src/ant/CMakeFiles/ant_core.dir/ant_pe.cc.o.d"
  "/root/repo/src/ant/ant_pipeline.cc" "src/ant/CMakeFiles/ant_core.dir/ant_pipeline.cc.o" "gcc" "src/ant/CMakeFiles/ant_core.dir/ant_pipeline.cc.o.d"
  "/root/repo/src/ant/area_model.cc" "src/ant/CMakeFiles/ant_core.dir/area_model.cc.o" "gcc" "src/ant/CMakeFiles/ant_core.dir/area_model.cc.o.d"
  "/root/repo/src/ant/fnir.cc" "src/ant/CMakeFiles/ant_core.dir/fnir.cc.o" "gcc" "src/ant/CMakeFiles/ant_core.dir/fnir.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ant_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/conv/CMakeFiles/ant_conv.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ant_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ant_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
