file(REMOVE_RECURSE
  "libant_workload.a"
)
