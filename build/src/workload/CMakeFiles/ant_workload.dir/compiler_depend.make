# Empty compiler generated dependencies file for ant_workload.
# This may be replaced when dependencies are built.
