file(REMOVE_RECURSE
  "CMakeFiles/ant_workload.dir/layer.cc.o"
  "CMakeFiles/ant_workload.dir/layer.cc.o.d"
  "CMakeFiles/ant_workload.dir/networks.cc.o"
  "CMakeFiles/ant_workload.dir/networks.cc.o.d"
  "CMakeFiles/ant_workload.dir/runner.cc.o"
  "CMakeFiles/ant_workload.dir/runner.cc.o.d"
  "CMakeFiles/ant_workload.dir/tracegen.cc.o"
  "CMakeFiles/ant_workload.dir/tracegen.cc.o.d"
  "libant_workload.a"
  "libant_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ant_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
