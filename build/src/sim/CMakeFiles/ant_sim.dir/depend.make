# Empty dependencies file for ant_sim.
# This may be replaced when dependencies are built.
