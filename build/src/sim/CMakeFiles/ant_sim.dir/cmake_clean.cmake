file(REMOVE_RECURSE
  "CMakeFiles/ant_sim.dir/accelerator.cc.o"
  "CMakeFiles/ant_sim.dir/accelerator.cc.o.d"
  "CMakeFiles/ant_sim.dir/accumulator.cc.o"
  "CMakeFiles/ant_sim.dir/accumulator.cc.o.d"
  "CMakeFiles/ant_sim.dir/chunking.cc.o"
  "CMakeFiles/ant_sim.dir/chunking.cc.o.d"
  "CMakeFiles/ant_sim.dir/clock.cc.o"
  "CMakeFiles/ant_sim.dir/clock.cc.o.d"
  "CMakeFiles/ant_sim.dir/energy.cc.o"
  "CMakeFiles/ant_sim.dir/energy.cc.o.d"
  "CMakeFiles/ant_sim.dir/sram.cc.o"
  "CMakeFiles/ant_sim.dir/sram.cc.o.d"
  "libant_sim.a"
  "libant_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ant_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
