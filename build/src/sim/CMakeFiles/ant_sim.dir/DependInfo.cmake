
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/accelerator.cc" "src/sim/CMakeFiles/ant_sim.dir/accelerator.cc.o" "gcc" "src/sim/CMakeFiles/ant_sim.dir/accelerator.cc.o.d"
  "/root/repo/src/sim/accumulator.cc" "src/sim/CMakeFiles/ant_sim.dir/accumulator.cc.o" "gcc" "src/sim/CMakeFiles/ant_sim.dir/accumulator.cc.o.d"
  "/root/repo/src/sim/chunking.cc" "src/sim/CMakeFiles/ant_sim.dir/chunking.cc.o" "gcc" "src/sim/CMakeFiles/ant_sim.dir/chunking.cc.o.d"
  "/root/repo/src/sim/clock.cc" "src/sim/CMakeFiles/ant_sim.dir/clock.cc.o" "gcc" "src/sim/CMakeFiles/ant_sim.dir/clock.cc.o.d"
  "/root/repo/src/sim/energy.cc" "src/sim/CMakeFiles/ant_sim.dir/energy.cc.o" "gcc" "src/sim/CMakeFiles/ant_sim.dir/energy.cc.o.d"
  "/root/repo/src/sim/sram.cc" "src/sim/CMakeFiles/ant_sim.dir/sram.cc.o" "gcc" "src/sim/CMakeFiles/ant_sim.dir/sram.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/conv/CMakeFiles/ant_conv.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ant_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ant_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
