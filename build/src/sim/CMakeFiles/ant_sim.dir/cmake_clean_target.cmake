file(REMOVE_RECURSE
  "libant_sim.a"
)
