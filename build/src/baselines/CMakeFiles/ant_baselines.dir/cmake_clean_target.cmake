file(REMOVE_RECURSE
  "libant_baselines.a"
)
