file(REMOVE_RECURSE
  "CMakeFiles/ant_baselines.dir/inner_product.cc.o"
  "CMakeFiles/ant_baselines.dir/inner_product.cc.o.d"
  "libant_baselines.a"
  "libant_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ant_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
