# Empty compiler generated dependencies file for ant_baselines.
# This may be replaced when dependencies are built.
