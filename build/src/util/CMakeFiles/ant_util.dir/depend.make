# Empty dependencies file for ant_util.
# This may be replaced when dependencies are built.
