file(REMOVE_RECURSE
  "libant_util.a"
)
