file(REMOVE_RECURSE
  "CMakeFiles/ant_util.dir/cli.cc.o"
  "CMakeFiles/ant_util.dir/cli.cc.o.d"
  "CMakeFiles/ant_util.dir/counters.cc.o"
  "CMakeFiles/ant_util.dir/counters.cc.o.d"
  "CMakeFiles/ant_util.dir/logging.cc.o"
  "CMakeFiles/ant_util.dir/logging.cc.o.d"
  "CMakeFiles/ant_util.dir/rng.cc.o"
  "CMakeFiles/ant_util.dir/rng.cc.o.d"
  "CMakeFiles/ant_util.dir/stats.cc.o"
  "CMakeFiles/ant_util.dir/stats.cc.o.d"
  "CMakeFiles/ant_util.dir/table.cc.o"
  "CMakeFiles/ant_util.dir/table.cc.o.d"
  "libant_util.a"
  "libant_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ant_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
