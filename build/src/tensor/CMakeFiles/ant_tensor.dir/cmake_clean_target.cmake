file(REMOVE_RECURSE
  "libant_tensor.a"
)
