
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tensor/csr.cc" "src/tensor/CMakeFiles/ant_tensor.dir/csr.cc.o" "gcc" "src/tensor/CMakeFiles/ant_tensor.dir/csr.cc.o.d"
  "/root/repo/src/tensor/sparsify.cc" "src/tensor/CMakeFiles/ant_tensor.dir/sparsify.cc.o" "gcc" "src/tensor/CMakeFiles/ant_tensor.dir/sparsify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ant_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
