# Empty compiler generated dependencies file for ant_tensor.
# This may be replaced when dependencies are built.
