file(REMOVE_RECURSE
  "CMakeFiles/ant_tensor.dir/csr.cc.o"
  "CMakeFiles/ant_tensor.dir/csr.cc.o.d"
  "CMakeFiles/ant_tensor.dir/sparsify.cc.o"
  "CMakeFiles/ant_tensor.dir/sparsify.cc.o.d"
  "libant_tensor.a"
  "libant_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ant_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
