# Empty compiler generated dependencies file for ant_conv.
# This may be replaced when dependencies are built.
