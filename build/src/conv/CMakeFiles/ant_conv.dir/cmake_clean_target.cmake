file(REMOVE_RECURSE
  "libant_conv.a"
)
