
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/conv/anticipate.cc" "src/conv/CMakeFiles/ant_conv.dir/anticipate.cc.o" "gcc" "src/conv/CMakeFiles/ant_conv.dir/anticipate.cc.o.d"
  "/root/repo/src/conv/dense_conv.cc" "src/conv/CMakeFiles/ant_conv.dir/dense_conv.cc.o" "gcc" "src/conv/CMakeFiles/ant_conv.dir/dense_conv.cc.o.d"
  "/root/repo/src/conv/outer_product.cc" "src/conv/CMakeFiles/ant_conv.dir/outer_product.cc.o" "gcc" "src/conv/CMakeFiles/ant_conv.dir/outer_product.cc.o.d"
  "/root/repo/src/conv/problem_spec.cc" "src/conv/CMakeFiles/ant_conv.dir/problem_spec.cc.o" "gcc" "src/conv/CMakeFiles/ant_conv.dir/problem_spec.cc.o.d"
  "/root/repo/src/conv/rcp_model.cc" "src/conv/CMakeFiles/ant_conv.dir/rcp_model.cc.o" "gcc" "src/conv/CMakeFiles/ant_conv.dir/rcp_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/ant_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ant_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
