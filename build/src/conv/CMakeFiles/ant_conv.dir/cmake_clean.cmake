file(REMOVE_RECURSE
  "CMakeFiles/ant_conv.dir/anticipate.cc.o"
  "CMakeFiles/ant_conv.dir/anticipate.cc.o.d"
  "CMakeFiles/ant_conv.dir/dense_conv.cc.o"
  "CMakeFiles/ant_conv.dir/dense_conv.cc.o.d"
  "CMakeFiles/ant_conv.dir/outer_product.cc.o"
  "CMakeFiles/ant_conv.dir/outer_product.cc.o.d"
  "CMakeFiles/ant_conv.dir/problem_spec.cc.o"
  "CMakeFiles/ant_conv.dir/problem_spec.cc.o.d"
  "CMakeFiles/ant_conv.dir/rcp_model.cc.o"
  "CMakeFiles/ant_conv.dir/rcp_model.cc.o.d"
  "libant_conv.a"
  "libant_conv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ant_conv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
