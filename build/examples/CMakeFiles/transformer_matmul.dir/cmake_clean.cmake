file(REMOVE_RECURSE
  "CMakeFiles/transformer_matmul.dir/transformer_matmul.cc.o"
  "CMakeFiles/transformer_matmul.dir/transformer_matmul.cc.o.d"
  "transformer_matmul"
  "transformer_matmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transformer_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
