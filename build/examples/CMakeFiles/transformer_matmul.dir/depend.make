# Empty dependencies file for transformer_matmul.
# This may be replaced when dependencies are built.
