# Empty compiler generated dependencies file for train_step_resnet18.
# This may be replaced when dependencies are built.
