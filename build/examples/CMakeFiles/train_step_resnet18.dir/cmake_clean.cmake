file(REMOVE_RECURSE
  "CMakeFiles/train_step_resnet18.dir/train_step_resnet18.cc.o"
  "CMakeFiles/train_step_resnet18.dir/train_step_resnet18.cc.o.d"
  "train_step_resnet18"
  "train_step_resnet18.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_step_resnet18.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
