# Empty compiler generated dependencies file for phase_breakdown.
# This may be replaced when dependencies are built.
