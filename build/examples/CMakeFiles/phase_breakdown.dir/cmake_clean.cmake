file(REMOVE_RECURSE
  "CMakeFiles/phase_breakdown.dir/phase_breakdown.cc.o"
  "CMakeFiles/phase_breakdown.dir/phase_breakdown.cc.o.d"
  "phase_breakdown"
  "phase_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
