file(REMOVE_RECURSE
  "CMakeFiles/rcp_model_test.dir/rcp_model_test.cc.o"
  "CMakeFiles/rcp_model_test.dir/rcp_model_test.cc.o.d"
  "rcp_model_test"
  "rcp_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcp_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
