# Empty dependencies file for rcp_model_test.
# This may be replaced when dependencies are built.
