file(REMOVE_RECURSE
  "CMakeFiles/area_model_test.dir/area_model_test.cc.o"
  "CMakeFiles/area_model_test.dir/area_model_test.cc.o.d"
  "area_model_test"
  "area_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/area_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
