# Empty dependencies file for area_model_test.
# This may be replaced when dependencies are built.
