
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/clock_test.cc" "tests/CMakeFiles/clock_test.dir/clock_test.cc.o" "gcc" "tests/CMakeFiles/clock_test.dir/clock_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scnn/CMakeFiles/ant_scnn.dir/DependInfo.cmake"
  "/root/repo/build/src/ant/CMakeFiles/ant_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/ant_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ant_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ant_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/conv/CMakeFiles/ant_conv.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ant_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ant_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
