file(REMOVE_RECURSE
  "CMakeFiles/accelerator_test.dir/accelerator_test.cc.o"
  "CMakeFiles/accelerator_test.dir/accelerator_test.cc.o.d"
  "accelerator_test"
  "accelerator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelerator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
