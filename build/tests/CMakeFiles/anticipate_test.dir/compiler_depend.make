# Empty compiler generated dependencies file for anticipate_test.
# This may be replaced when dependencies are built.
