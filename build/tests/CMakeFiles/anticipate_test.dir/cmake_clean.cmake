file(REMOVE_RECURSE
  "CMakeFiles/anticipate_test.dir/anticipate_test.cc.o"
  "CMakeFiles/anticipate_test.dir/anticipate_test.cc.o.d"
  "anticipate_test"
  "anticipate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anticipate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
