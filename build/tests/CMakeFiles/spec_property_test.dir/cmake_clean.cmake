file(REMOVE_RECURSE
  "CMakeFiles/spec_property_test.dir/spec_property_test.cc.o"
  "CMakeFiles/spec_property_test.dir/spec_property_test.cc.o.d"
  "spec_property_test"
  "spec_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
