# Empty compiler generated dependencies file for spec_property_test.
# This may be replaced when dependencies are built.
