file(REMOVE_RECURSE
  "CMakeFiles/outer_product_test.dir/outer_product_test.cc.o"
  "CMakeFiles/outer_product_test.dir/outer_product_test.cc.o.d"
  "outer_product_test"
  "outer_product_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outer_product_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
