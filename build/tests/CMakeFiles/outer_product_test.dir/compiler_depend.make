# Empty compiler generated dependencies file for outer_product_test.
# This may be replaced when dependencies are built.
