# Empty compiler generated dependencies file for ant_pipeline_test.
# This may be replaced when dependencies are built.
