file(REMOVE_RECURSE
  "CMakeFiles/ant_pipeline_test.dir/ant_pipeline_test.cc.o"
  "CMakeFiles/ant_pipeline_test.dir/ant_pipeline_test.cc.o.d"
  "ant_pipeline_test"
  "ant_pipeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ant_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
