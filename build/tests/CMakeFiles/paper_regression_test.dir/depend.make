# Empty dependencies file for paper_regression_test.
# This may be replaced when dependencies are built.
