# Empty dependencies file for csr_property_test.
# This may be replaced when dependencies are built.
