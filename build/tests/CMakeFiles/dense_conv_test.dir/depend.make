# Empty dependencies file for dense_conv_test.
# This may be replaced when dependencies are built.
