file(REMOVE_RECURSE
  "CMakeFiles/dense_conv_test.dir/dense_conv_test.cc.o"
  "CMakeFiles/dense_conv_test.dir/dense_conv_test.cc.o.d"
  "dense_conv_test"
  "dense_conv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dense_conv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
