# Empty dependencies file for fnir_test.
# This may be replaced when dependencies are built.
