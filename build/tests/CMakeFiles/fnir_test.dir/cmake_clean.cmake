file(REMOVE_RECURSE
  "CMakeFiles/fnir_test.dir/fnir_test.cc.o"
  "CMakeFiles/fnir_test.dir/fnir_test.cc.o.d"
  "fnir_test"
  "fnir_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fnir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
