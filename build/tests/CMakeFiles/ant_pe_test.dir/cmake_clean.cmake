file(REMOVE_RECURSE
  "CMakeFiles/ant_pe_test.dir/ant_pe_test.cc.o"
  "CMakeFiles/ant_pe_test.dir/ant_pe_test.cc.o.d"
  "ant_pe_test"
  "ant_pe_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ant_pe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
