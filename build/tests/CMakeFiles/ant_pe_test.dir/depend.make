# Empty dependencies file for ant_pe_test.
# This may be replaced when dependencies are built.
