file(REMOVE_RECURSE
  "CMakeFiles/problem_spec_test.dir/problem_spec_test.cc.o"
  "CMakeFiles/problem_spec_test.dir/problem_spec_test.cc.o.d"
  "problem_spec_test"
  "problem_spec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/problem_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
