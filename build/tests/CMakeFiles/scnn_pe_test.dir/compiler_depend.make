# Empty compiler generated dependencies file for scnn_pe_test.
# This may be replaced when dependencies are built.
