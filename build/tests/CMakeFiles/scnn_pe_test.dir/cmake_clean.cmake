file(REMOVE_RECURSE
  "CMakeFiles/scnn_pe_test.dir/scnn_pe_test.cc.o"
  "CMakeFiles/scnn_pe_test.dir/scnn_pe_test.cc.o.d"
  "scnn_pe_test"
  "scnn_pe_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scnn_pe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
