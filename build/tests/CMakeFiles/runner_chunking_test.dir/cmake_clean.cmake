file(REMOVE_RECURSE
  "CMakeFiles/runner_chunking_test.dir/runner_chunking_test.cc.o"
  "CMakeFiles/runner_chunking_test.dir/runner_chunking_test.cc.o.d"
  "runner_chunking_test"
  "runner_chunking_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runner_chunking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
