file(REMOVE_RECURSE
  "CMakeFiles/networks_test.dir/networks_test.cc.o"
  "CMakeFiles/networks_test.dir/networks_test.cc.o.d"
  "networks_test"
  "networks_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/networks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
