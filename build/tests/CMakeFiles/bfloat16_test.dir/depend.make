# Empty dependencies file for bfloat16_test.
# This may be replaced when dependencies are built.
