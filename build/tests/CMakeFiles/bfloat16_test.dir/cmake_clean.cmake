file(REMOVE_RECURSE
  "CMakeFiles/bfloat16_test.dir/bfloat16_test.cc.o"
  "CMakeFiles/bfloat16_test.dir/bfloat16_test.cc.o.d"
  "bfloat16_test"
  "bfloat16_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bfloat16_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
