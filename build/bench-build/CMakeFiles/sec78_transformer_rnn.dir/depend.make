# Empty dependencies file for sec78_transformer_rnn.
# This may be replaced when dependencies are built.
