file(REMOVE_RECURSE
  "../bench/sec78_transformer_rnn"
  "../bench/sec78_transformer_rnn.pdb"
  "CMakeFiles/sec78_transformer_rnn.dir/bench_common.cc.o"
  "CMakeFiles/sec78_transformer_rnn.dir/bench_common.cc.o.d"
  "CMakeFiles/sec78_transformer_rnn.dir/sec78_transformer_rnn.cc.o"
  "CMakeFiles/sec78_transformer_rnn.dir/sec78_transformer_rnn.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec78_transformer_rnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
