file(REMOVE_RECURSE
  "../bench/abl_load_balance"
  "../bench/abl_load_balance.pdb"
  "CMakeFiles/abl_load_balance.dir/abl_load_balance.cc.o"
  "CMakeFiles/abl_load_balance.dir/abl_load_balance.cc.o.d"
  "CMakeFiles/abl_load_balance.dir/bench_common.cc.o"
  "CMakeFiles/abl_load_balance.dir/bench_common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_load_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
