file(REMOVE_RECURSE
  "../bench/abl_dataflow"
  "../bench/abl_dataflow.pdb"
  "CMakeFiles/abl_dataflow.dir/abl_dataflow.cc.o"
  "CMakeFiles/abl_dataflow.dir/abl_dataflow.cc.o.d"
  "CMakeFiles/abl_dataflow.dir/bench_common.cc.o"
  "CMakeFiles/abl_dataflow.dir/bench_common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
