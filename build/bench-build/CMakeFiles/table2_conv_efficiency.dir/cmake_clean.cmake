file(REMOVE_RECURSE
  "../bench/table2_conv_efficiency"
  "../bench/table2_conv_efficiency.pdb"
  "CMakeFiles/table2_conv_efficiency.dir/bench_common.cc.o"
  "CMakeFiles/table2_conv_efficiency.dir/bench_common.cc.o.d"
  "CMakeFiles/table2_conv_efficiency.dir/table2_conv_efficiency.cc.o"
  "CMakeFiles/table2_conv_efficiency.dir/table2_conv_efficiency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_conv_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
