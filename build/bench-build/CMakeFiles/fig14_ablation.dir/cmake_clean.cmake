file(REMOVE_RECURSE
  "../bench/fig14_ablation"
  "../bench/fig14_ablation.pdb"
  "CMakeFiles/fig14_ablation.dir/bench_common.cc.o"
  "CMakeFiles/fig14_ablation.dir/bench_common.cc.o.d"
  "CMakeFiles/fig14_ablation.dir/fig14_ablation.cc.o"
  "CMakeFiles/fig14_ablation.dir/fig14_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
