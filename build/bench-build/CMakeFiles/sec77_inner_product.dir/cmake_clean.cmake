file(REMOVE_RECURSE
  "../bench/sec77_inner_product"
  "../bench/sec77_inner_product.pdb"
  "CMakeFiles/sec77_inner_product.dir/bench_common.cc.o"
  "CMakeFiles/sec77_inner_product.dir/bench_common.cc.o.d"
  "CMakeFiles/sec77_inner_product.dir/sec77_inner_product.cc.o"
  "CMakeFiles/sec77_inner_product.dir/sec77_inner_product.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec77_inner_product.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
