# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sec77_inner_product.
