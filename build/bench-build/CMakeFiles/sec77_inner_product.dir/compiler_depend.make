# Empty compiler generated dependencies file for sec77_inner_product.
# This may be replaced when dependencies are built.
