file(REMOVE_RECURSE
  "../bench/fig09_speedup_energy"
  "../bench/fig09_speedup_energy.pdb"
  "CMakeFiles/fig09_speedup_energy.dir/bench_common.cc.o"
  "CMakeFiles/fig09_speedup_energy.dir/bench_common.cc.o.d"
  "CMakeFiles/fig09_speedup_energy.dir/fig09_speedup_energy.cc.o"
  "CMakeFiles/fig09_speedup_energy.dir/fig09_speedup_energy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_speedup_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
