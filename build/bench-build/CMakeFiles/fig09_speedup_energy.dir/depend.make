# Empty dependencies file for fig09_speedup_energy.
# This may be replaced when dependencies are built.
