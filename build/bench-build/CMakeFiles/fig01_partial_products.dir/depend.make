# Empty dependencies file for fig01_partial_products.
# This may be replaced when dependencies are built.
