file(REMOVE_RECURSE
  "../bench/fig01_partial_products"
  "../bench/fig01_partial_products.pdb"
  "CMakeFiles/fig01_partial_products.dir/bench_common.cc.o"
  "CMakeFiles/fig01_partial_products.dir/bench_common.cc.o.d"
  "CMakeFiles/fig01_partial_products.dir/fig01_partial_products.cc.o"
  "CMakeFiles/fig01_partial_products.dir/fig01_partial_products.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_partial_products.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
