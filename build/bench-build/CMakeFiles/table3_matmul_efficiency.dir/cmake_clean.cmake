file(REMOVE_RECURSE
  "../bench/table3_matmul_efficiency"
  "../bench/table3_matmul_efficiency.pdb"
  "CMakeFiles/table3_matmul_efficiency.dir/bench_common.cc.o"
  "CMakeFiles/table3_matmul_efficiency.dir/bench_common.cc.o.d"
  "CMakeFiles/table3_matmul_efficiency.dir/table3_matmul_efficiency.cc.o"
  "CMakeFiles/table3_matmul_efficiency.dir/table3_matmul_efficiency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_matmul_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
