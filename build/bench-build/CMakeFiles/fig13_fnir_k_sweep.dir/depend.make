# Empty dependencies file for fig13_fnir_k_sweep.
# This may be replaced when dependencies are built.
