file(REMOVE_RECURSE
  "../bench/fig13_fnir_k_sweep"
  "../bench/fig13_fnir_k_sweep.pdb"
  "CMakeFiles/fig13_fnir_k_sweep.dir/bench_common.cc.o"
  "CMakeFiles/fig13_fnir_k_sweep.dir/bench_common.cc.o.d"
  "CMakeFiles/fig13_fnir_k_sweep.dir/fig13_fnir_k_sweep.cc.o"
  "CMakeFiles/fig13_fnir_k_sweep.dir/fig13_fnir_k_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_fnir_k_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
