# Empty compiler generated dependencies file for table5_rcp_avoided.
# This may be replaced when dependencies are built.
