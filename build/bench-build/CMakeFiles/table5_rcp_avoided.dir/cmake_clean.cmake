file(REMOVE_RECURSE
  "../bench/table5_rcp_avoided"
  "../bench/table5_rcp_avoided.pdb"
  "CMakeFiles/table5_rcp_avoided.dir/bench_common.cc.o"
  "CMakeFiles/table5_rcp_avoided.dir/bench_common.cc.o.d"
  "CMakeFiles/table5_rcp_avoided.dir/table5_rcp_avoided.cc.o"
  "CMakeFiles/table5_rcp_avoided.dir/table5_rcp_avoided.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_rcp_avoided.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
