file(REMOVE_RECURSE
  "../bench/fig11_same_sparsity"
  "../bench/fig11_same_sparsity.pdb"
  "CMakeFiles/fig11_same_sparsity.dir/bench_common.cc.o"
  "CMakeFiles/fig11_same_sparsity.dir/bench_common.cc.o.d"
  "CMakeFiles/fig11_same_sparsity.dir/fig11_same_sparsity.cc.o"
  "CMakeFiles/fig11_same_sparsity.dir/fig11_same_sparsity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_same_sparsity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
