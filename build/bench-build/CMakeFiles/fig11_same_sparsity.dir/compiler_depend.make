# Empty compiler generated dependencies file for fig11_same_sparsity.
# This may be replaced when dependencies are built.
