file(REMOVE_RECURSE
  "../bench/sec75_fnir_area"
  "../bench/sec75_fnir_area.pdb"
  "CMakeFiles/sec75_fnir_area.dir/bench_common.cc.o"
  "CMakeFiles/sec75_fnir_area.dir/bench_common.cc.o.d"
  "CMakeFiles/sec75_fnir_area.dir/sec75_fnir_area.cc.o"
  "CMakeFiles/sec75_fnir_area.dir/sec75_fnir_area.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec75_fnir_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
