# Empty compiler generated dependencies file for sec75_fnir_area.
# This may be replaced when dependencies are built.
