file(REMOVE_RECURSE
  "../bench/abl_energy_params"
  "../bench/abl_energy_params.pdb"
  "CMakeFiles/abl_energy_params.dir/abl_energy_params.cc.o"
  "CMakeFiles/abl_energy_params.dir/abl_energy_params.cc.o.d"
  "CMakeFiles/abl_energy_params.dir/bench_common.cc.o"
  "CMakeFiles/abl_energy_params.dir/bench_common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_energy_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
