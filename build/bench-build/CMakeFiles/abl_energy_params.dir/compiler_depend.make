# Empty compiler generated dependencies file for abl_energy_params.
# This may be replaced when dependencies are built.
