file(REMOVE_RECURSE
  "../bench/fig12_multiplier_sweep"
  "../bench/fig12_multiplier_sweep.pdb"
  "CMakeFiles/fig12_multiplier_sweep.dir/bench_common.cc.o"
  "CMakeFiles/fig12_multiplier_sweep.dir/bench_common.cc.o.d"
  "CMakeFiles/fig12_multiplier_sweep.dir/fig12_multiplier_sweep.cc.o"
  "CMakeFiles/fig12_multiplier_sweep.dir/fig12_multiplier_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_multiplier_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
