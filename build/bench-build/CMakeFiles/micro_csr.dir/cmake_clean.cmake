file(REMOVE_RECURSE
  "../bench/micro_csr"
  "../bench/micro_csr.pdb"
  "CMakeFiles/micro_csr.dir/micro_csr.cc.o"
  "CMakeFiles/micro_csr.dir/micro_csr.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_csr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
