# Empty compiler generated dependencies file for micro_csr.
# This may be replaced when dependencies are built.
