file(REMOVE_RECURSE
  "../bench/fig10_vs_dense_baseline"
  "../bench/fig10_vs_dense_baseline.pdb"
  "CMakeFiles/fig10_vs_dense_baseline.dir/bench_common.cc.o"
  "CMakeFiles/fig10_vs_dense_baseline.dir/bench_common.cc.o.d"
  "CMakeFiles/fig10_vs_dense_baseline.dir/fig10_vs_dense_baseline.cc.o"
  "CMakeFiles/fig10_vs_dense_baseline.dir/fig10_vs_dense_baseline.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_vs_dense_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
