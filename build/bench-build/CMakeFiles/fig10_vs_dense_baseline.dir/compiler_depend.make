# Empty compiler generated dependencies file for fig10_vs_dense_baseline.
# This may be replaced when dependencies are built.
