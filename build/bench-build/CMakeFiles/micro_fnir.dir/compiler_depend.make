# Empty compiler generated dependencies file for micro_fnir.
# This may be replaced when dependencies are built.
