file(REMOVE_RECURSE
  "../bench/micro_fnir"
  "../bench/micro_fnir.pdb"
  "CMakeFiles/micro_fnir.dir/micro_fnir.cc.o"
  "CMakeFiles/micro_fnir.dir/micro_fnir.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_fnir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
